// Integration example: plugging *your own* micro-behavior log into the
// library. Shows the full path a downstream user follows:
//
//   raw (item, operation) event rows
//     -> embsr::Session objects
//     -> embsr::Preprocess (filtering, merging, splitting)
//     -> EmbsrModel training
//     -> online next-item scoring for a live session prefix.
//
// Run: ./build/examples/custom_dataset

#include <cstdio>
#include <vector>

#include "core/embsr_model.h"
#include "data/preprocess.h"
#include "metrics/metrics.h"
#include "util/check.h"
#include "util/rng.h"

int main() {
  using namespace embsr;  // NOLINT — example code

  // --- 1. Your raw log. Here: a toy grocery store with 3 operations
  //        (0 = view, 1 = add-to-basket, 2 = buy) and a deliberate pattern:
  //        users who *basket* cheese (item 4) go on to buy crackers
  //        (item 5); users who only view cheese drift to milk (item 2).
  std::vector<Session> log;
  Rng rng(99);
  for (int u = 0; u < 400; ++u) {
    Session s;
    const int64_t bread = 0, butter = 1, milk = 2, jam = 3, cheese = 4,
                  crackers = 5;
    s.events.push_back({bread, 0});
    if (rng.Bernoulli(0.5)) s.events.push_back({butter, 0});
    s.events.push_back({cheese, 0});
    const bool serious = rng.Bernoulli(0.5);
    if (serious) s.events.push_back({cheese, 1});  // basket the cheese
    if (rng.Bernoulli(0.3)) s.events.push_back({jam, 0});
    // The planted rule (plus a little noise):
    const int64_t target = rng.Bernoulli(0.9)
                               ? (serious ? crackers : milk)
                               : static_cast<int64_t>(rng.UniformInt(6));
    s.events.push_back({target, 0});
    log.push_back(std::move(s));
  }

  // --- 2. Preprocess with the library's protocol.
  PreprocessConfig prep;
  prep.min_item_support = 2;
  auto processed = Preprocess(log, /*num_operations=*/3, prep, "grocery");
  EMBSR_CHECK_OK(processed);
  const ProcessedDataset& data = processed.value();
  std::printf("grocery log: %zu train / %zu test examples, %lld items\n",
              data.train.size(), data.test.size(),
              static_cast<long long>(data.num_items));

  // --- 3. Train EMBSR.
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.embedding_dim = 16;
  cfg.lr = 0.01f;
  EmbsrModel model("EMBSR", data.num_items, data.num_operations, cfg);
  EMBSR_CHECK_OK(model.Fit(data));

  // --- 4. Offline evaluation.
  RankAccumulator acc;
  for (const auto& ex : data.test) {
    acc.Add(RankOfTarget(model.ScoreAll(ex), ex.target));
  }
  std::printf("test H@1 = %.1f%%  H@3 = %.1f%%  M@3 = %.1f%%\n", acc.HitAt(1),
              acc.HitAt(3), acc.MrrAt(3));

  // --- 5. Online use: score a live session prefix.
  //        NOTE: item ids here are the *remapped* ids from preprocessing;
  //        a production system would keep the vocabulary mapping around.
  const Example& live = data.test.front();
  auto scores = model.ScoreAll(live);
  std::printf("live session with %zu events -> top item %ld "
              "(ground truth %lld, rank %d)\n",
              live.flat_items.size(),
              std::max_element(scores.begin(), scores.end()) - scores.begin(),
              static_cast<long long>(live.target),
              RankOfTarget(scores, live.target));

  // The planted rule should be learned nearly perfectly.
  if (acc.HitAt(1) > 70.0) {
    std::printf("the basket-cheese => crackers rule was learned.\n");
  }
  return 0;
}
