// Domain example: what the micro-behavior signal looks like, and why a
// macro-only model cannot use it (the paper's Fig. 1 motivation).
//
// The program (1) generates a JD-style log, (2) prints operation usage and
// the most frequent dyadic operation pairs, (3) builds two sessions that are
// identical at the item level but differ in operations, and shows that
// EMBSR ranks different items for them while a macro-only variant (SGNN-Self)
// cannot tell them apart.
//
// Run: ./build/examples/micro_behavior_analysis

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/embsr_model.h"
#include "datagen/generator.h"
#include "metrics/metrics.h"
#include "util/check.h"

namespace {

const char* OpName(int64_t op) {
  static const char* kNames[] = {"click",    "detail", "comments", "compare",
                                 "cart",     "order",  "favorite", "share",
                                 "filter",   "hover"};
  return op >= 0 && op < 10 ? kNames[op] : "?";
}

}  // namespace

int main() {
  using namespace embsr;  // NOLINT — example code

  // 1. Generate and inspect the raw micro-behavior log.
  GeneratorConfig gen = JdAppliancesConfig(0.2);
  auto sessions = GenerateSessions(gen);
  std::map<int64_t, int64_t> op_counts;
  std::map<std::pair<int64_t, int64_t>, int64_t> pair_counts;
  for (const auto& s : sessions) {
    for (size_t i = 0; i < s.events.size(); ++i) {
      ++op_counts[s.events[i].operation];
      if (i > 0 && s.events[i - 1].item == s.events[i].item) {
        ++pair_counts[{s.events[i - 1].operation, s.events[i].operation}];
      }
    }
  }
  std::printf("Operation usage over %zu sessions:\n", sessions.size());
  for (const auto& [op, count] : op_counts) {
    std::printf("  %-9s %6lld\n", OpName(op), static_cast<long long>(count));
  }
  std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> ranked;
  for (const auto& [pair, count] : pair_counts) ranked.push_back({count, pair});
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\nMost frequent within-item operation bigrams (the dyadic "
              "patterns EMBSR encodes):\n");
  for (size_t i = 0; i < std::min<size_t>(6, ranked.size()); ++i) {
    std::printf("  <%s, %s>  %lld\n", OpName(ranked[i].second.first),
                OpName(ranked[i].second.second),
                static_cast<long long>(ranked[i].first));
  }

  // 2. Train EMBSR and the macro-only variant on the processed dataset.
  auto dataset = MakeDataset(gen);
  EMBSR_CHECK_OK(dataset);
  const ProcessedDataset& data = dataset.value();
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.embedding_dim = 32;
  EmbsrModel micro("EMBSR", data.num_items, data.num_operations, cfg);
  EmbsrModel macro("SGNN-Self", data.num_items, data.num_operations, cfg,
                   EmbsrVariants::SgnnSelf());
  EMBSR_CHECK_OK(micro.Fit(data));
  EMBSR_CHECK_OK(macro.Fit(data));

  // 3. Two users, same items, different micro-behaviors (Fig. 1).
  Example researcher;
  researcher.macro_items = {10, 11, 12};
  researcher.macro_ops = {{0, 1}, {0, 1, 2, 4}, {0}};  // comments+cart on 11
  Example quick_buyer;
  quick_buyer.macro_items = {10, 11, 12};
  quick_buyer.macro_ops = {{0, 1}, {0}, {0, 5}};  // straight order on 12
  for (Example* ex : {&researcher, &quick_buyer}) {
    for (size_t i = 0; i < ex->macro_items.size(); ++i) {
      for (int64_t op : ex->macro_ops[i]) {
        ex->flat_items.push_back(ex->macro_items[i]);
        ex->flat_ops.push_back(op);
      }
    }
    ex->target = 0;  // unused here
  }

  auto top1 = [](const std::vector<float>& scores) {
    return std::max_element(scores.begin(), scores.end()) - scores.begin();
  };
  std::printf("\nSame item sequence {10, 11, 12}, different operations:\n");
  std::printf("  macro-only model:  researcher -> item %ld, quick buyer -> "
              "item %ld (identical inputs, identical prediction: %s)\n",
              top1(macro.ScoreAll(researcher)),
              top1(macro.ScoreAll(quick_buyer)),
              macro.ScoreAll(researcher) == macro.ScoreAll(quick_buyer)
                  ? "yes"
                  : "no");
  std::printf("  EMBSR:             researcher -> item %ld, quick buyer -> "
              "item %ld (distinguishes the intents: %s)\n",
              top1(micro.ScoreAll(researcher)),
              top1(micro.ScoreAll(quick_buyer)),
              micro.ScoreAll(researcher) != micro.ScoreAll(quick_buyer)
                  ? "yes"
                  : "no");
  return 0;
}
