// Lifecycle example: train EMBSR, checkpoint it to disk, restore it into a
// fresh process-like model instance, and verify identical online scoring.
//
// Run: ./build/examples/train_save_serve

#include <cstdio>

#include "core/embsr_model.h"
#include "datagen/generator.h"
#include "nn/checkpoint.h"
#include "train/evaluator.h"
#include "util/check.h"

int main() {
  using namespace embsr;  // NOLINT — example code

  auto dataset = MakeDataset(JdAppliancesConfig(0.15));
  EMBSR_CHECK_OK(dataset);
  const ProcessedDataset& data = dataset.value();

  // Train.
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.embedding_dim = 32;
  EmbsrModel trainer("EMBSR", data.num_items, data.num_operations, cfg);
  EMBSR_CHECK_OK(trainer.Fit(data));
  EvalResult before = Evaluate(&trainer, data.test, {10, 20}, 200);
  std::printf("trained model:  H@20 = %.2f%%  M@20 = %.2f%%\n",
              before.report.hit.at(20), before.report.mrr.at(20));

  // Save.
  const std::string path = "/tmp/embsr_demo.ckpt";
  EMBSR_CHECK_OK(nn::SaveCheckpoint(trainer, path));
  std::printf("checkpoint written to %s (%lld parameters)\n", path.c_str(),
              static_cast<long long>(trainer.ParameterCount()));

  // Restore into a fresh instance (e.g. a serving process). The seed
  // differs, so before loading the two models disagree.
  TrainConfig serving_cfg = cfg;
  serving_cfg.seed = 999;
  EmbsrModel server("EMBSR", data.num_items, data.num_operations,
                    serving_cfg);
  server.SetTraining(false);
  EMBSR_CHECK_OK(nn::LoadCheckpoint(path, &server));
  EvalResult after = Evaluate(&server, data.test, {10, 20}, 200);
  std::printf("restored model: H@20 = %.2f%%  M@20 = %.2f%%\n",
              after.report.hit.at(20), after.report.mrr.at(20));

  EMBSR_CHECK(before.report.hit.at(20) == after.report.hit.at(20));
  EMBSR_CHECK(before.ranks == after.ranks);
  std::printf("restored scores match the trained model exactly.\n");
  return 0;
}
