// Quickstart: generate a synthetic micro-behavior dataset, train EMBSR,
// and print top-K recommendation quality next to two baselines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "datagen/generator.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "util/check.h"
#include "util/logging.h"

int main() {
  using namespace embsr;  // NOLINT — example code
  SetLogLevel(LogLevel::kInfo);

  // 1. Simulate a JD-style micro-behavior log (see datagen/generator.h for
  //    the generative story) and run the paper's preprocessing.
  GeneratorConfig gen = JdAppliancesConfig(/*scale=*/0.25);
  Result<ProcessedDataset> dataset = MakeDataset(gen);
  EMBSR_CHECK_OK(dataset);
  const ProcessedDataset& data = dataset.value();
  std::printf("dataset %s: %zu train / %zu valid / %zu test sessions, "
              "%lld items, %lld operations\n",
              data.name.c_str(), data.train.size(), data.valid.size(),
              data.test.size(), static_cast<long long>(data.num_items),
              static_cast<long long>(data.num_operations));

  // 2. Train EMBSR and two reference points.
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.embedding_dim = 32;
  cfg.verbose = true;

  std::vector<ExperimentResult> results;
  for (const char* name : {"S-POP", "SGNN-HN", "EMBSR"}) {
    results.push_back(RunExperiment(name, data, cfg, {5, 10, 20}));
  }

  // 3. Report.
  std::printf("\n%s\n",
              FormatMetricTable(data.name, results, {5, 10, 20}).c_str());
  return 0;
}
