// CLI example: a configurable model bake-off on any of the three datasets.
//
// Usage:
//   ./build/examples/model_bakeoff [dataset] [model ...]
//
//   dataset: appliances (default) | computers | trivago
//   models:  any names from the zoo (default: SKNN SR-GNN MKM-SR EMBSR)
//
// Prints the paper-style metric table plus a pairwise Wilcoxon signed-rank
// significance matrix over reciprocal ranks @20.

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "metrics/metrics.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "util/check.h"

int main(int argc, char** argv) {
  using namespace embsr;  // NOLINT — example code

  std::string dataset_name = argc > 1 ? argv[1] : "appliances";
  std::vector<std::string> model_names;
  for (int i = 2; i < argc; ++i) model_names.push_back(argv[i]);
  if (model_names.empty()) {
    model_names = {"SKNN", "SR-GNN", "MKM-SR", "EMBSR"};
  }

  GeneratorConfig gen = dataset_name == "computers" ? JdComputersConfig(0.3)
                        : dataset_name == "trivago" ? TrivagoConfig(0.3)
                                                    : JdAppliancesConfig(0.3);
  auto dataset = MakeDataset(gen);
  EMBSR_CHECK_OK(dataset);
  const ProcessedDataset& data = dataset.value();
  std::printf("dataset %s: %zu train / %zu test, %lld items\n\n",
              data.name.c_str(), data.train.size(), data.test.size(),
              static_cast<long long>(data.num_items));

  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.embedding_dim = 32;

  std::vector<ExperimentResult> results;
  for (const auto& name : model_names) {
    if (CreateModel(name, 1, 1, cfg) == nullptr) {
      std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
      return 1;
    }
    results.push_back(RunExperiment(name, data, cfg, {5, 10, 20}));
  }
  std::printf("%s\n",
              FormatMetricTable(data.name, results, {5, 10, 20}).c_str());

  std::printf("Pairwise Wilcoxon signed-rank p-values (RR@20):\n%12s", "");
  for (const auto& r : results) std::printf(" %12s", r.model.c_str());
  std::printf("\n");
  for (const auto& a : results) {
    std::printf("%12s", a.model.c_str());
    for (const auto& b : results) {
      if (a.model == b.model) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.4f",
                    WilcoxonSignedRankP(a.eval.ReciprocalRanksAt(20),
                                        b.eval.ReciprocalRanksAt(20)));
      }
    }
    std::printf("\n");
  }
  return 0;
}
