# Empty dependencies file for train_save_serve.
# This may be replaced when dependencies are built.
