file(REMOVE_RECURSE
  "CMakeFiles/micro_behavior_analysis.dir/micro_behavior_analysis.cpp.o"
  "CMakeFiles/micro_behavior_analysis.dir/micro_behavior_analysis.cpp.o.d"
  "micro_behavior_analysis"
  "micro_behavior_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_behavior_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
