# Empty compiler generated dependencies file for micro_behavior_analysis.
# This may be replaced when dependencies are built.
