file(REMOVE_RECURSE
  "CMakeFiles/model_bakeoff.dir/model_bakeoff.cpp.o"
  "CMakeFiles/model_bakeoff.dir/model_bakeoff.cpp.o.d"
  "model_bakeoff"
  "model_bakeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_bakeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
