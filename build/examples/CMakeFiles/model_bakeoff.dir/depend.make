# Empty dependencies file for model_bakeoff.
# This may be replaced when dependencies are built.
