# Empty dependencies file for bench_fig6_fusion.
# This may be replaced when dependencies are built.
