file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dyadic.dir/bench_fig5_dyadic.cc.o"
  "CMakeFiles/bench_fig5_dyadic.dir/bench_fig5_dyadic.cc.o.d"
  "bench_fig5_dyadic"
  "bench_fig5_dyadic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dyadic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
