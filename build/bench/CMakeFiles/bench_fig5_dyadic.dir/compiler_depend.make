# Empty compiler generated dependencies file for bench_fig5_dyadic.
# This may be replaced when dependencies are built.
