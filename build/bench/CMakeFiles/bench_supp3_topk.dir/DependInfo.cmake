
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_supp3_topk.cc" "bench/CMakeFiles/bench_supp3_topk.dir/bench_supp3_topk.cc.o" "gcc" "bench/CMakeFiles/bench_supp3_topk.dir/bench_supp3_topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/embsr_train.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/embsr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/embsr_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/embsr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/embsr_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/embsr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/embsr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/embsr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/embsr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/embsr_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/embsr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/embsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
