file(REMOVE_RECURSE
  "CMakeFiles/bench_supp3_topk.dir/bench_supp3_topk.cc.o"
  "CMakeFiles/bench_supp3_topk.dir/bench_supp3_topk.cc.o.d"
  "bench_supp3_topk"
  "bench_supp3_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp3_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
