# Empty compiler generated dependencies file for bench_supp3_topk.
# This may be replaced when dependencies are built.
