file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_op_importance.dir/bench_ext_op_importance.cc.o"
  "CMakeFiles/bench_ext_op_importance.dir/bench_ext_op_importance.cc.o.d"
  "bench_ext_op_importance"
  "bench_ext_op_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_op_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
