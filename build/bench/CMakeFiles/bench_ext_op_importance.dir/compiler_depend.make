# Empty compiler generated dependencies file for bench_ext_op_importance.
# This may be replaced when dependencies are built.
