# Empty compiler generated dependencies file for bench_supp1_single_op.
# This may be replaced when dependencies are built.
