file(REMOVE_RECURSE
  "CMakeFiles/bench_supp1_single_op.dir/bench_supp1_single_op.cc.o"
  "CMakeFiles/bench_supp1_single_op.dir/bench_supp1_single_op.cc.o.d"
  "bench_supp1_single_op"
  "bench_supp1_single_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp1_single_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
