file(REMOVE_RECURSE
  "CMakeFiles/bench_supp2_sgnnhn_dyadic.dir/bench_supp2_sgnnhn_dyadic.cc.o"
  "CMakeFiles/bench_supp2_sgnnhn_dyadic.dir/bench_supp2_sgnnhn_dyadic.cc.o.d"
  "bench_supp2_sgnnhn_dyadic"
  "bench_supp2_sgnnhn_dyadic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_supp2_sgnnhn_dyadic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
