# Empty compiler generated dependencies file for bench_supp2_sgnnhn_dyadic.
# This may be replaced when dependencies are built.
