file(REMOVE_RECURSE
  "CMakeFiles/embsr_util.dir/env.cc.o"
  "CMakeFiles/embsr_util.dir/env.cc.o.d"
  "CMakeFiles/embsr_util.dir/logging.cc.o"
  "CMakeFiles/embsr_util.dir/logging.cc.o.d"
  "CMakeFiles/embsr_util.dir/rng.cc.o"
  "CMakeFiles/embsr_util.dir/rng.cc.o.d"
  "CMakeFiles/embsr_util.dir/status.cc.o"
  "CMakeFiles/embsr_util.dir/status.cc.o.d"
  "CMakeFiles/embsr_util.dir/string_util.cc.o"
  "CMakeFiles/embsr_util.dir/string_util.cc.o.d"
  "libembsr_util.a"
  "libembsr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
