# Empty compiler generated dependencies file for embsr_util.
# This may be replaced when dependencies are built.
