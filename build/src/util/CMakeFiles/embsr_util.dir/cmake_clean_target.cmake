file(REMOVE_RECURSE
  "libembsr_util.a"
)
