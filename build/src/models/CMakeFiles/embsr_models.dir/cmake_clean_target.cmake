file(REMOVE_RECURSE
  "libembsr_models.a"
)
