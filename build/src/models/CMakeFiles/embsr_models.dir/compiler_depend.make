# Empty compiler generated dependencies file for embsr_models.
# This may be replaced when dependencies are built.
