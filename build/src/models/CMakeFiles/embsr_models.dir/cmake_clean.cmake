file(REMOVE_RECURSE
  "CMakeFiles/embsr_models.dir/baselines_extra.cc.o"
  "CMakeFiles/embsr_models.dir/baselines_extra.cc.o.d"
  "CMakeFiles/embsr_models.dir/baselines_gnn.cc.o"
  "CMakeFiles/embsr_models.dir/baselines_gnn.cc.o.d"
  "CMakeFiles/embsr_models.dir/baselines_nonneural.cc.o"
  "CMakeFiles/embsr_models.dir/baselines_nonneural.cc.o.d"
  "CMakeFiles/embsr_models.dir/baselines_seq.cc.o"
  "CMakeFiles/embsr_models.dir/baselines_seq.cc.o.d"
  "CMakeFiles/embsr_models.dir/components.cc.o"
  "CMakeFiles/embsr_models.dir/components.cc.o.d"
  "CMakeFiles/embsr_models.dir/neural_model.cc.o"
  "CMakeFiles/embsr_models.dir/neural_model.cc.o.d"
  "libembsr_models.a"
  "libembsr_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
