
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/baselines_extra.cc" "src/models/CMakeFiles/embsr_models.dir/baselines_extra.cc.o" "gcc" "src/models/CMakeFiles/embsr_models.dir/baselines_extra.cc.o.d"
  "/root/repo/src/models/baselines_gnn.cc" "src/models/CMakeFiles/embsr_models.dir/baselines_gnn.cc.o" "gcc" "src/models/CMakeFiles/embsr_models.dir/baselines_gnn.cc.o.d"
  "/root/repo/src/models/baselines_nonneural.cc" "src/models/CMakeFiles/embsr_models.dir/baselines_nonneural.cc.o" "gcc" "src/models/CMakeFiles/embsr_models.dir/baselines_nonneural.cc.o.d"
  "/root/repo/src/models/baselines_seq.cc" "src/models/CMakeFiles/embsr_models.dir/baselines_seq.cc.o" "gcc" "src/models/CMakeFiles/embsr_models.dir/baselines_seq.cc.o.d"
  "/root/repo/src/models/components.cc" "src/models/CMakeFiles/embsr_models.dir/components.cc.o" "gcc" "src/models/CMakeFiles/embsr_models.dir/components.cc.o.d"
  "/root/repo/src/models/neural_model.cc" "src/models/CMakeFiles/embsr_models.dir/neural_model.cc.o" "gcc" "src/models/CMakeFiles/embsr_models.dir/neural_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/embsr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/embsr_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/embsr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/embsr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/embsr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/embsr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/embsr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/embsr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
