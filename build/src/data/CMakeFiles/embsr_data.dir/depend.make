# Empty dependencies file for embsr_data.
# This may be replaced when dependencies are built.
