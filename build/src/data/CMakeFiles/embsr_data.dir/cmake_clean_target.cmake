file(REMOVE_RECURSE
  "libembsr_data.a"
)
