file(REMOVE_RECURSE
  "CMakeFiles/embsr_data.dir/io.cc.o"
  "CMakeFiles/embsr_data.dir/io.cc.o.d"
  "CMakeFiles/embsr_data.dir/preprocess.cc.o"
  "CMakeFiles/embsr_data.dir/preprocess.cc.o.d"
  "libembsr_data.a"
  "libembsr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
