file(REMOVE_RECURSE
  "libembsr_core.a"
)
