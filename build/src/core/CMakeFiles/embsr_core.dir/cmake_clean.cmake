file(REMOVE_RECURSE
  "CMakeFiles/embsr_core.dir/embsr_model.cc.o"
  "CMakeFiles/embsr_core.dir/embsr_model.cc.o.d"
  "libembsr_core.a"
  "libembsr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
