# Empty dependencies file for embsr_core.
# This may be replaced when dependencies are built.
