# Empty dependencies file for embsr_optim.
# This may be replaced when dependencies are built.
