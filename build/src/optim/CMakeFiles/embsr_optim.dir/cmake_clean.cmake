file(REMOVE_RECURSE
  "CMakeFiles/embsr_optim.dir/optimizer.cc.o"
  "CMakeFiles/embsr_optim.dir/optimizer.cc.o.d"
  "libembsr_optim.a"
  "libembsr_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
