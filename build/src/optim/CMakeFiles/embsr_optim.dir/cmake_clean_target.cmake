file(REMOVE_RECURSE
  "libembsr_optim.a"
)
