# Empty dependencies file for embsr_graph.
# This may be replaced when dependencies are built.
