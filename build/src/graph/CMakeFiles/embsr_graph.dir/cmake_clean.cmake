file(REMOVE_RECURSE
  "CMakeFiles/embsr_graph.dir/session_graph.cc.o"
  "CMakeFiles/embsr_graph.dir/session_graph.cc.o.d"
  "libembsr_graph.a"
  "libembsr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
