file(REMOVE_RECURSE
  "libembsr_graph.a"
)
