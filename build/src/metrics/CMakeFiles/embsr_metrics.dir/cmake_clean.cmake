file(REMOVE_RECURSE
  "CMakeFiles/embsr_metrics.dir/metrics.cc.o"
  "CMakeFiles/embsr_metrics.dir/metrics.cc.o.d"
  "libembsr_metrics.a"
  "libembsr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
