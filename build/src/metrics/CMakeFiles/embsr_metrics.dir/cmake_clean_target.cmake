file(REMOVE_RECURSE
  "libembsr_metrics.a"
)
