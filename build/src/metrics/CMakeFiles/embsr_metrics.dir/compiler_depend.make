# Empty compiler generated dependencies file for embsr_metrics.
# This may be replaced when dependencies are built.
