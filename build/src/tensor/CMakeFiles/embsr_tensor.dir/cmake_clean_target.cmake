file(REMOVE_RECURSE
  "libembsr_tensor.a"
)
