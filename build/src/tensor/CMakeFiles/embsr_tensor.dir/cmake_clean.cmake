file(REMOVE_RECURSE
  "CMakeFiles/embsr_tensor.dir/tensor.cc.o"
  "CMakeFiles/embsr_tensor.dir/tensor.cc.o.d"
  "libembsr_tensor.a"
  "libembsr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
