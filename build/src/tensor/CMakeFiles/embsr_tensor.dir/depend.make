# Empty dependencies file for embsr_tensor.
# This may be replaced when dependencies are built.
