file(REMOVE_RECURSE
  "CMakeFiles/embsr_autograd.dir/ops.cc.o"
  "CMakeFiles/embsr_autograd.dir/ops.cc.o.d"
  "CMakeFiles/embsr_autograd.dir/variable.cc.o"
  "CMakeFiles/embsr_autograd.dir/variable.cc.o.d"
  "libembsr_autograd.a"
  "libembsr_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
