file(REMOVE_RECURSE
  "libembsr_autograd.a"
)
