# Empty compiler generated dependencies file for embsr_autograd.
# This may be replaced when dependencies are built.
