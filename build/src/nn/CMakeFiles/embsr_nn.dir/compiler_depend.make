# Empty compiler generated dependencies file for embsr_nn.
# This may be replaced when dependencies are built.
