file(REMOVE_RECURSE
  "libembsr_nn.a"
)
