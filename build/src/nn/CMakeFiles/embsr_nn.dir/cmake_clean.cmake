file(REMOVE_RECURSE
  "CMakeFiles/embsr_nn.dir/checkpoint.cc.o"
  "CMakeFiles/embsr_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/embsr_nn.dir/layers.cc.o"
  "CMakeFiles/embsr_nn.dir/layers.cc.o.d"
  "CMakeFiles/embsr_nn.dir/module.cc.o"
  "CMakeFiles/embsr_nn.dir/module.cc.o.d"
  "libembsr_nn.a"
  "libembsr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
