file(REMOVE_RECURSE
  "libembsr_train.a"
)
