file(REMOVE_RECURSE
  "CMakeFiles/embsr_train.dir/evaluator.cc.o"
  "CMakeFiles/embsr_train.dir/evaluator.cc.o.d"
  "CMakeFiles/embsr_train.dir/experiment.cc.o"
  "CMakeFiles/embsr_train.dir/experiment.cc.o.d"
  "CMakeFiles/embsr_train.dir/model_zoo.cc.o"
  "CMakeFiles/embsr_train.dir/model_zoo.cc.o.d"
  "libembsr_train.a"
  "libembsr_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
