# Empty compiler generated dependencies file for embsr_train.
# This may be replaced when dependencies are built.
