# Empty compiler generated dependencies file for embsr_datagen.
# This may be replaced when dependencies are built.
