file(REMOVE_RECURSE
  "libembsr_datagen.a"
)
