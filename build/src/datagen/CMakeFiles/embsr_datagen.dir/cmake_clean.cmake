file(REMOVE_RECURSE
  "CMakeFiles/embsr_datagen.dir/generator.cc.o"
  "CMakeFiles/embsr_datagen.dir/generator.cc.o.d"
  "libembsr_datagen.a"
  "libembsr_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
