# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/embsr_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
