file(REMOVE_RECURSE
  "CMakeFiles/embsr_test.dir/embsr_test.cc.o"
  "CMakeFiles/embsr_test.dir/embsr_test.cc.o.d"
  "embsr_test"
  "embsr_test.pdb"
  "embsr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
