# Empty compiler generated dependencies file for embsr_test.
# This may be replaced when dependencies are built.
