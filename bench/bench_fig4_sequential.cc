// Regenerates Fig. 4: utility of the *sequential* pattern of
// micro-behaviors. Compares SGNN-Self (no micro-behaviors), SGNN-Seq-Self
// (sequential pattern in the GNN via the micro-operation GRU), RNN-Self
// (flat RNN over item+operation embeddings) and full EMBSR on the two JD
// datasets at K = 10, 20.

#include <cstdio>

#include "bench_common.h"
#include "train/model_zoo.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader(
      "Fig. 4: utility of sequential micro-behavior patterns",
      "ICDE'22 EMBSR paper, Fig. 4 (bar charts on Appliances/Computers)",
      "expected shape: EMBSR > SGNN-Seq-Self > SGNN-Self, RNN-Self worst "
      "on M@K");
  BenchReport report("fig4_sequential");

  const std::vector<int> ks = {10, 20};
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<std::string> variants = {"SGNN-Self", "SGNN-Seq-Self",
                                             "RNN-Self", "EMBSR"};

  for (const char* which : {"appliances", "computers"}) {
    const ProcessedDataset data = LoadDataset(which);
    std::vector<ExperimentResult> results;
    for (const std::string& name : variants) {
      results.push_back(RunExperiment(name, data, cfg, ks));
    }
    std::printf("%s\n", FormatMetricTable(data.name, results, ks).c_str());
    report.AddResults(results);
  }
  return 0;
}
