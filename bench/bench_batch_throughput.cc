// Batched-execution throughput: sessions/sec and per-forward step time of
// the three genuinely batched models (GRU4Rec, STAMP, EMBSR) at forward
// batch sizes 1, 8, 32 and 128, via the EMBSR_BATCH_SIZE evaluator path.
//
// Batch 1 is the legacy per-session loop, so the table reads directly as
// "what did batching buy". The win does not need multiple cores: the
// per-session path re-materializes the [d, V] item-table transpose and
// re-runs the decode GEMM once per session, while the batched path does
// both once per forward-batch. On multi-core hosts sessions/sec must be
// monotonically non-decreasing from batch 1 to 32 (the perf_regression
// BatchEquivPerf test pins a 2x floor at batch 32).
//
// Writes the BENCH_batch_throughput.json sidecar with
// `sessions_per_sec/<model>/b<batch>` and `step_ms/<model>/b<batch>`
// scalars; scripts/bench_history.py `check` treats a drop in any
// sessions_per_sec scalar beyond threshold as a regression.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "models/neural_model.h"
#include "train/evaluator.h"
#include "train/model_zoo.h"
#include "util/check.h"
#include "util/timer.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader("Batched-execution throughput (sessions/sec vs. batch size)",
              "infrastructure bench (no paper table); batching per "
              "GRU4Rec session-parallel mini-batches, arXiv 1511.06939",
              "untrained weights — scoring cost is parameter-independent; "
              "batch 1 is the legacy per-session path");
  BenchReport report("batch_throughput");

  const ProcessedDataset data = LoadDataset("appliances");
  const size_t eval_cap = static_cast<size_t>(256 * BenchScale());
  const std::vector<int64_t> batches = {1, 8, 32, 128};
  TrainConfig cfg;
  cfg.embedding_dim = 32;
  cfg.seed = 7;

  std::printf("%-10s %8s %14s %12s\n", "model", "batch", "sessions/sec",
              "step_ms");
  for (const char* name : {"GRU4Rec", "STAMP", "EMBSR"}) {
    std::unique_ptr<Recommender> model =
        CreateModel(name, data.num_items, data.num_operations, cfg);
    EMBSR_CHECK(model != nullptr);
    model->EnsureEvalMode();
    for (const int64_t b : batches) {
      const std::string bs = std::to_string(b);
      setenv("EMBSR_BATCH_SIZE", bs.c_str(), 1);
      // Warmup pass: page in the item table, spin up pool lanes.
      (void)Evaluate(model.get(), data.test, {20},
                     std::min<size_t>(eval_cap, 32));
      WallTimer timer;
      const EvalResult r =
          Evaluate(model.get(), data.test, {20}, eval_cap);
      const double wall = timer.ElapsedSeconds();
      const double n = static_cast<double>(r.ranks.size());
      EMBSR_CHECK(n > 0);
      const double sessions_per_sec = n / wall;
      const double num_steps =
          (n + static_cast<double>(b) - 1.0) / static_cast<double>(b);
      const double step_ms = wall * 1e3 / num_steps;
      std::printf("%-10s %8lld %14.1f %12.3f\n", name,
                  static_cast<long long>(b), sessions_per_sec, step_ms);
      report.AddScalar("sessions_per_sec/" + std::string(name) + "/b" + bs,
                       sessions_per_sec);
      report.AddScalar("step_ms/" + std::string(name) + "/b" + bs, step_ms);
    }
  }
  unsetenv("EMBSR_BATCH_SIZE");
  return 0;
}
