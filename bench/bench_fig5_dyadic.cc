// Regenerates Fig. 5: utility of the *dyadic relational* pattern of
// micro-behaviors. Compares RNN-Self, SGNN-Self, SGNN-Abs-Self (absolute
// operation embeddings in standard self-attention), SGNN-Dyadic (dyadic
// encoding, no micro-op GRU) and full EMBSR on the JD datasets at K=10,20.

#include <cstdio>

#include "bench_common.h"
#include "train/model_zoo.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader(
      "Fig. 5: utility of dyadic relational micro-behavior patterns",
      "ICDE'22 EMBSR paper, Fig. 5 (bar charts on Appliances/Computers)",
      "expected shape: SGNN-Dyadic > SGNN-Abs-Self in all cases; EMBSR "
      "best; RNN-Self worst");
  BenchReport report("fig5_dyadic");

  const std::vector<int> ks = {10, 20};
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<std::string> variants = {
      "RNN-Self", "SGNN-Self", "SGNN-Abs-Self", "SGNN-Dyadic", "EMBSR"};

  for (const char* which : {"appliances", "computers"}) {
    const ProcessedDataset data = LoadDataset(which);
    std::vector<ExperimentResult> results;
    for (const std::string& name : variants) {
      results.push_back(RunExperiment(name, data, cfg, ks));
    }
    std::printf("%s\n", FormatMetricTable(data.name, results, ks).c_str());
    report.AddResults(results);
  }
  return 0;
}
