#ifndef EMBSR_BENCH_BENCH_COMMON_H_
#define EMBSR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "datagen/generator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "prof/op_profiler.h"
#include "train/experiment.h"
#include "util/check.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/timer.h"

namespace embsr {
namespace bench {

/// Session-count multiplier for bench datasets. The repo default (scale 1)
/// generates ~2000 usable sessions per dataset — enough for the tables'
/// *shape* on one CPU core; raise EMBSR_BENCH_SCALE toward the paper's
/// half-million-session scale if you have the hardware.
inline double DatasetScale() { return 0.5 * BenchScale(); }

/// Builds one of the three paper datasets at bench scale.
/// `which` is "appliances", "computers" or "trivago".
inline ProcessedDataset LoadDataset(const std::string& which) {
  GeneratorConfig cfg;
  if (which == "appliances") {
    cfg = JdAppliancesConfig(DatasetScale());
  } else if (which == "computers") {
    cfg = JdComputersConfig(DatasetScale());
  } else if (which == "trivago") {
    cfg = TrivagoConfig(DatasetScale());
  } else {
    EMBSR_CHECK_MSG(false, "unknown dataset '%s'", which.c_str());
  }
  auto result = MakeDataset(cfg);
  EMBSR_CHECK_OK(result);
  return std::move(result).value();
}

/// Single-operation-restricted variant (supplement protocol).
inline ProcessedDataset LoadDatasetSingleOp(const std::string& which) {
  GeneratorConfig cfg = which == "trivago" ? TrivagoConfig(DatasetScale())
                        : which == "computers"
                            ? JdComputersConfig(DatasetScale())
                            : JdAppliancesConfig(DatasetScale());
  const int64_t op = cfg.num_operations >= 10
                         ? static_cast<int64_t>(kJdClick)
                         : static_cast<int64_t>(kTrvClickout);
  auto result = MakeDatasetSingleOp(cfg, op);
  EMBSR_CHECK_OK(result);
  return std::move(result).value();
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* note) {
  std::printf("=====================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  if (note != nullptr && note[0] != '\0') std::printf("Note: %s\n", note);
  std::printf("Workload scale: EMBSR_BENCH_SCALE=%.2f "
              "(sessions x%.2f of repo default)\n",
              BenchScale(), BenchScale());
  std::printf("=====================================================\n\n");
}

/// Machine-readable sidecar of a bench run. Collects experiment results and
/// named scalars while the bench prints its human table, then writes
/// `BENCH_<name>.json` (schema v3: workload scale, pool thread count, wall
/// time, results with per-cell status ok|failed, scalars, profiler block,
/// metrics snapshot) on destruction. The `profile` block is always present;
/// it reports `"enabled": false` with empty tables unless the process ran
/// with EMBSR_PROF=1 (the constructor arms the profiler from the env).
/// Failed sweep cells are recorded with their error instead of aborting the
/// report — graceful degradation. The destination directory is
/// the working directory, overridable with EMBSR_BENCH_JSON_DIR; the file
/// is what scripts/check_bench_json.py validates and what the perf
/// trajectory accumulates from.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    prof::MaybeInitFromEnv();
  }

  ~BenchReport() { Write(); }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void AddResult(const ExperimentResult& r) { results_.push_back(r); }

  void AddResults(const std::vector<ExperimentResult>& rs) {
    for (const auto& r : rs) results_.push_back(r);
  }

  void AddScalar(const std::string& key, double value) {
    scalars_.emplace_back(key, value);
  }

  std::string path() const {
    return GetEnvString("EMBSR_BENCH_JSON_DIR", ".") + "/BENCH_" + name_ +
           ".json";
  }

  void Write() {
    if (written_) return;
    written_ = true;
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("schema_version").Int(3);
    w.Key("bench").String(name_);
    w.Key("threads").Int(par::ThreadCount());
    w.Key("workload").BeginObject();
    w.Key("bench_scale").Number(BenchScale());
    w.Key("dataset_scale").Number(DatasetScale());
    w.EndObject();
    w.Key("wall_seconds").Number(timer_.ElapsedSeconds());
    w.Key("results").BeginArray();
    for (const auto& r : results_) {
      w.BeginObject();
      w.Key("model").String(r.model);
      w.Key("dataset").String(r.dataset);
      w.Key("status").String(r.ok ? "ok" : "failed");
      if (!r.ok) w.Key("error").String(r.error);
      w.Key("fit_seconds").Number(r.fit_seconds);
      w.Key("eval_seconds").Number(r.eval_seconds);
      w.Key("hit").BeginObject();
      for (const auto& [k, v] : r.eval.report.hit) {
        w.Key(std::to_string(k)).Number(v);
      }
      w.EndObject();
      w.Key("mrr").BeginObject();
      for (const auto& [k, v] : r.eval.report.mrr) {
        w.Key(std::to_string(k)).Number(v);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.Key("scalars").BeginObject();
    for (const auto& [k, v] : scalars_) w.Key(k).Number(v);
    w.EndObject();
    w.Key("profile").Raw(prof::ProfileJson());
    w.Key("metrics").Raw(obs::Registry::Global().SnapshotJson());
    w.EndObject();

    const std::string out = path();
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      EMBSR_LOG(Warning) << "cannot write bench report '" << out << "'";
      return;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    EMBSR_LOG(Info) << "wrote " << out;
  }

 private:
  std::string name_;
  WallTimer timer_;
  std::vector<ExperimentResult> results_;
  std::vector<std::pair<std::string, double>> scalars_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace embsr

#endif  // EMBSR_BENCH_BENCH_COMMON_H_
