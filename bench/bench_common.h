#ifndef EMBSR_BENCH_BENCH_COMMON_H_
#define EMBSR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "datagen/generator.h"
#include "train/experiment.h"
#include "util/check.h"
#include "util/env.h"

namespace embsr {
namespace bench {

/// Session-count multiplier for bench datasets. The repo default (scale 1)
/// generates ~2000 usable sessions per dataset — enough for the tables'
/// *shape* on one CPU core; raise EMBSR_BENCH_SCALE toward the paper's
/// half-million-session scale if you have the hardware.
inline double DatasetScale() { return 0.5 * BenchScale(); }

/// Builds one of the three paper datasets at bench scale.
/// `which` is "appliances", "computers" or "trivago".
inline ProcessedDataset LoadDataset(const std::string& which) {
  GeneratorConfig cfg;
  if (which == "appliances") {
    cfg = JdAppliancesConfig(DatasetScale());
  } else if (which == "computers") {
    cfg = JdComputersConfig(DatasetScale());
  } else if (which == "trivago") {
    cfg = TrivagoConfig(DatasetScale());
  } else {
    EMBSR_CHECK_MSG(false, "unknown dataset '%s'", which.c_str());
  }
  auto result = MakeDataset(cfg);
  EMBSR_CHECK_OK(result);
  return std::move(result).value();
}

/// Single-operation-restricted variant (supplement protocol).
inline ProcessedDataset LoadDatasetSingleOp(const std::string& which) {
  GeneratorConfig cfg = which == "trivago" ? TrivagoConfig(DatasetScale())
                        : which == "computers"
                            ? JdComputersConfig(DatasetScale())
                            : JdAppliancesConfig(DatasetScale());
  const int64_t op = cfg.num_operations >= 10
                         ? static_cast<int64_t>(kJdClick)
                         : static_cast<int64_t>(kTrvClickout);
  auto result = MakeDatasetSingleOp(cfg, op);
  EMBSR_CHECK_OK(result);
  return std::move(result).value();
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        const char* note) {
  std::printf("=====================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  if (note != nullptr && note[0] != '\0') std::printf("Note: %s\n", note);
  std::printf("Workload scale: EMBSR_BENCH_SCALE=%.2f "
              "(sessions x%.2f of repo default)\n",
              BenchScale(), BenchScale());
  std::printf("=====================================================\n\n");
}

}  // namespace bench
}  // namespace embsr

#endif  // EMBSR_BENCH_BENCH_COMMON_H_
