// Regenerates Table III: overall H@K / M@K (K = 5, 10, 20) of all twelve
// systems on the three datasets, plus the improvement of EMBSR over the
// best baseline and the Wilcoxon signed-rank significance test the paper
// reports.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "train/model_zoo.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader("Table III: performances (%) of all the SR methods",
              "ICDE'22 EMBSR paper, Table III",
              "expect the *shape*: neural > S-POP/SKNN on JD, GNN family > "
              "RNN family, micro-behavior models competitive, EMBSR best; "
              "S-POP collapses on Trivago");
  BenchReport report("table3_overall");

  const std::vector<int> ks = {5, 10, 20};
  const TrainConfig cfg = BenchTrainConfig();

  for (const char* which : {"appliances", "computers", "trivago"}) {
    const ProcessedDataset data = LoadDataset(which);
    // Cells train in parallel on the par:: pool (serial inside each cell),
    // and come back in Table3ModelNames() order with per-cell numbers
    // identical to a serial sweep.
    std::vector<ExperimentResult> results =
        RunExperimentCells(Table3ModelNames(), data, cfg, ks);
    std::printf("%s\n", FormatMetricTable(data.name, results, ks).c_str());
    report.AddResults(results);

    // Improvement of EMBSR over the best baseline per metric, as in the
    // paper's "Imp." column. Failed cells are skipped: they carry no
    // metrics, and the sweep already recorded them as failures.
    const ExperimentResult& embsr_res = results.back();
    if (!embsr_res.ok) {
      std::printf("  EMBSR cell failed (%s); skipping Imp./Wilcoxon block\n\n",
                  embsr_res.error.c_str());
      continue;
    }
    for (int k : ks) {
      double best_base_h = 0.0, best_base_m = 0.0;
      std::string best_h_name, best_m_name;
      for (size_t i = 0; i + 1 < results.size(); ++i) {
        if (!results[i].ok) continue;
        if (results[i].eval.report.hit.at(k) > best_base_h) {
          best_base_h = results[i].eval.report.hit.at(k);
          best_h_name = results[i].model;
        }
        if (results[i].eval.report.mrr.at(k) > best_base_m) {
          best_base_m = results[i].eval.report.mrr.at(k);
          best_m_name = results[i].model;
        }
      }
      const double h = embsr_res.eval.report.hit.at(k);
      const double m = embsr_res.eval.report.mrr.at(k);
      std::printf("  H@%-2d EMBSR=%6.2f best-baseline=%6.2f (%s)  Imp=%+.2f%%\n",
                  k, h, best_base_h, best_h_name.c_str(),
                  best_base_h > 0 ? 100.0 * (h - best_base_h) / best_base_h
                                  : 0.0);
      std::printf("  M@%-2d EMBSR=%6.2f best-baseline=%6.2f (%s)  Imp=%+.2f%%\n",
                  k, m, best_base_m, best_m_name.c_str(),
                  best_base_m > 0 ? 100.0 * (m - best_base_m) / best_base_m
                                  : 0.0);
    }

    // Wilcoxon signed-rank test of EMBSR vs the strongest baseline by M@20.
    size_t best_idx = results.size();
    for (size_t i = 0; i + 1 < results.size(); ++i) {
      if (!results[i].ok) continue;
      if (best_idx == results.size() ||
          results[i].eval.report.mrr.at(20) >
              results[best_idx].eval.report.mrr.at(20)) {
        best_idx = i;
      }
    }
    if (best_idx == results.size()) {
      std::printf("  every baseline cell failed; skipping Wilcoxon test\n\n");
      continue;
    }
    const double p = WilcoxonSignedRankP(
        embsr_res.eval.ReciprocalRanksAt(20),
        results[best_idx].eval.ReciprocalRanksAt(20));
    std::printf("  Wilcoxon signed-rank (EMBSR vs %s, RR@20): p = %.3g\n\n",
                results[best_idx].model.c_str(), p);
  }
  return 0;
}
