// Regenerates Fig. 7: a case study on the Computers dataset. Trains four
// variants (SGNN-Self, SGNN-Seq-Self, SGNN-Dyadic, EMBSR), picks a test
// session in which the deepest-engaged item (cart/order signals) is NOT the
// last item of the session, and prints each model's top-5 recalls with the
// target's rank — illustrating that macro-only models chase the last item
// while micro-behavior models recover the user's real intent.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "metrics/metrics.h"
#include "train/model_zoo.h"

namespace {

// Engagement depth as the generator defines it (see datagen/generator.cc).
double Depth(const std::vector<int64_t>& ops) {
  double d = 0;
  for (int64_t op : ops) {
    if (op == embsr::kJdReadDetail) d += 1;
    if (op == embsr::kJdReadComments) d += 2;
    if (op == embsr::kJdAddToCart) d += 3;
    if (op == embsr::kJdOrder) d += 5;
  }
  return d;
}

}  // namespace

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader("Fig. 7: case study on the Computers dataset",
              "ICDE'22 EMBSR paper, Fig. 7",
              "macro-only recalls mirror the last item; micro-behavior "
              "models recall items near the deeply-engaged one");
  BenchReport report("fig7_case_study");

  const ProcessedDataset data = LoadDataset("computers");
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<std::string> names = {"SGNN-Self", "SGNN-Seq-Self",
                                          "SGNN-Dyadic", "EMBSR"};
  std::vector<std::unique_ptr<Recommender>> models;
  for (const auto& n : names) {
    models.push_back(CreateModel(n, data.num_items, data.num_operations, cfg));
    EMBSR_CHECK_OK(models.back()->Fit(data));
  }

  // Select a showcase session: deepest-engaged item != last item, and the
  // target sits near the deepest item (the planted signal), i.e. the case
  // the paper illustrates.
  const Example* chosen = nullptr;
  for (const auto& ex : data.test) {
    double best_d = -1;
    int64_t deepest = -1;
    for (size_t i = 0; i < ex.macro_items.size(); ++i) {
      const double d = Depth(ex.macro_ops[i]);
      if (d > best_d) {
        best_d = d;
        deepest = ex.macro_items[i];
      }
    }
    if (best_d >= 4.0 && deepest != ex.macro_items.back() &&
        std::abs(ex.target - deepest) <= 3 && ex.macro_items.size() >= 5) {
      chosen = &ex;
      break;
    }
  }
  if (chosen == nullptr) {
    std::printf("no showcase session found at this scale; rerun with a "
                "larger EMBSR_BENCH_SCALE\n");
    return 0;
  }

  std::printf("Session (macro items with their operations):\n");
  for (size_t i = 0; i < chosen->macro_items.size(); ++i) {
    std::printf("  item %4lld  ops [",
                static_cast<long long>(chosen->macro_items[i]));
    for (size_t j = 0; j < chosen->macro_ops[i].size(); ++j) {
      std::printf("%s%lld", j ? " " : "",
                  static_cast<long long>(chosen->macro_ops[i][j]));
    }
    std::printf("]  depth=%.0f\n", Depth(chosen->macro_ops[i]));
  }
  std::printf("Ground-truth next item: %lld\n\n",
              static_cast<long long>(chosen->target));

  for (size_t mi = 0; mi < models.size(); ++mi) {
    const auto scores = models[mi]->ScoreAll(*chosen);
    const std::vector<int64_t> order = TopKIndices(scores, 5);
    const int rank = RankOfTarget(scores, chosen->target);
    report.AddScalar("target_rank/" + names[mi], rank);
    std::printf("%-14s top-5: ", names[mi].c_str());
    for (int64_t item : order) {
      std::printf("%lld%s ", static_cast<long long>(item),
                  item == chosen->target ? "*" : "");
    }
    std::printf("  (target rank %d%s)\n", rank,
                rank <= 20 ? ", recalled in top-20" : "");
  }
  std::printf("\n'*' marks the ground truth. Operation ids: 0=click "
              "1=detail 2=comments 3=compare 4=cart 5=order 6=favorite "
              "7=share 8=filter 9=hover.\n");
  return 0;
}
