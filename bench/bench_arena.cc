// Arena-executor footprint and overhead: steady-state serving-style
// scoring across the neural zoo at batch 1 (ScoreAll) and batch 16
// (ScoreBatch), with the arena off (heap baseline) and on (placed replay
// after the two-occurrence warm-up).
//
// Reported per model and batch:
//   heap_step_ms / step_ms        steady-state step time, heap vs. placed
//   heap_peak_bytes               transient tensor peak of one heap step
//                                 (prof mem tracker, peak minus baseline)
//   arena_peak_bytes              live peak of placed arena bytes
//   arena_live_over_planned       measured live peak / planner's peak
//                                 (the issue's acceptance bar is <= 1.05)
//   heap_acquires_steady          buffer-pool heap acquisitions across the
//                                 timed placed loop (0 = allocation-free
//                                 steady state)
//
// Writes the BENCH_arena.json sidecar; scripts/bench_history.py `check`
// treats growth in any arena_peak_bytes or arena_live_over_planned scalar
// as a regression, and scripts/verify_gate.py runs this binary in its
// --arena stage.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "arena/arena.h"
#include "bench_common.h"
#include "models/neural_model.h"
#include "prof/mem_tracker.h"
#include "prof/op_profiler.h"
#include "tensor/buffer_pool.h"
#include "train/model_zoo.h"
#include "util/check.h"
#include "util/timer.h"

namespace {

struct Leg {
  double step_ms = 0.0;
  int64_t heap_peak_bytes = 0;      // heap leg only
  int64_t arena_peak_bytes = 0;     // arena leg only
  int64_t planned_peak_bytes = 0;   // arena leg only
  int64_t heap_acquires = 0;        // arena leg only
  bool placed = false;
};

}  // namespace

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader("Arena executor: footprint and steady-state overhead",
              "infrastructure bench (no paper table); plan-executing "
              "arena allocation per DESIGN.md §17",
              "untrained weights — scoring cost is parameter-independent; "
              "batch 1 is ScoreAll, batch 16 is ScoreBatch");
  BenchReport report("arena");

  prof::Start();  // arms the mem tracker for the heap-peak measurement
  const ProcessedDataset data = LoadDataset("appliances");
  EMBSR_CHECK(!data.test.empty());
  const int iters = std::max(3, static_cast<int>(20 * BenchScale()));

  TrainConfig cfg;
  cfg.embedding_dim = 32;
  cfg.seed = 7;

  const Example& ex = data.test[0];
  std::vector<const Example*> chunk;
  for (size_t i = 0; i < std::min<size_t>(16, data.test.size()); ++i) {
    chunk.push_back(&data.test[i]);
  }

  std::printf("%-10s %5s %10s %10s %12s %12s %8s %6s\n", "model", "batch",
              "heap_ms", "arena_ms", "heap_peakB", "arena_peakB",
              "live/plan", "placed");

  for (const std::string& name : Table3ModelNames()) {
    std::unique_ptr<Recommender> model =
        CreateModel(name, data.num_items, data.num_operations, cfg);
    EMBSR_CHECK(model != nullptr);
    auto* neural = dynamic_cast<NeuralSessionModel*>(model.get());
    if (neural == nullptr) continue;  // memory-based: no graph, no arena
    neural->EnsureEvalMode();

    for (const int64_t b : {int64_t{1}, int64_t{16}}) {
      auto run_step = [&] {
        if (b == 1) {
          (void)neural->ScoreAll(ex);
        } else {
          (void)neural->ScoreBatch(chunk);
        }
      };

      // Heap baseline. The arena stays off; peak is the transient tensor
      // high-water mark of one steady-state step above its live baseline.
      Leg heap;
      {
        setenv("EMBSR_ARENA", "0", 1);
        run_step();
        run_step();
        // Restart the prof session: the peak watermark collapses to the
        // current live baseline, so the loop below measures this step only.
        prof::Stop();
        prof::Start();
        const int64_t base_live = prof::MemSnapshot().live_bytes;
        WallTimer timer;
        for (int i = 0; i < iters; ++i) run_step();
        heap.step_ms = timer.ElapsedSeconds() * 1e3 / iters;
        heap.heap_peak_bytes = prof::MemSnapshot().peak_bytes - base_live;
      }

      // Placed replay: occurrence 1 heap, 2 record, 3+ placed; the timed
      // loop is pure replay against the cached plan.
      Leg arena_leg;
      {
        setenv("EMBSR_ARENA", "1", 1);
        arena::ResetForTesting();
        run_step();
        run_step();
        run_step();
        arena_leg.placed = arena::LastStepStats().placed;
        const int64_t acquires0 = tensor_pool::HeapAcquires();
        WallTimer timer;
        for (int i = 0; i < iters; ++i) run_step();
        arena_leg.step_ms = timer.ElapsedSeconds() * 1e3 / iters;
        arena_leg.heap_acquires = tensor_pool::HeapAcquires() - acquires0;
        const arena::StepStats& st = arena::LastStepStats();
        arena_leg.placed = arena_leg.placed && st.placed;
        arena_leg.arena_peak_bytes = st.live_peak_bytes;
        arena_leg.planned_peak_bytes = st.planned_peak_bytes;
        unsetenv("EMBSR_ARENA");
      }

      const double live_over_planned =
          arena_leg.planned_peak_bytes > 0
              ? static_cast<double>(arena_leg.arena_peak_bytes) /
                    static_cast<double>(arena_leg.planned_peak_bytes)
              : 0.0;
      std::printf("%-10s %5lld %10.3f %10.3f %12lld %12lld %8.3f %6s\n",
                  name.c_str(), static_cast<long long>(b), heap.step_ms,
                  arena_leg.step_ms,
                  static_cast<long long>(heap.heap_peak_bytes),
                  static_cast<long long>(arena_leg.arena_peak_bytes),
                  live_over_planned, arena_leg.placed ? "yes" : "NO");

      const std::string tag = name + "/b" + std::to_string(b);
      report.AddScalar("heap_step_ms/" + tag, heap.step_ms);
      report.AddScalar("step_ms/" + tag, arena_leg.step_ms);
      report.AddScalar("heap_peak_bytes/" + tag,
                       static_cast<double>(heap.heap_peak_bytes));
      report.AddScalar("arena_peak_bytes/" + tag,
                       static_cast<double>(arena_leg.arena_peak_bytes));
      report.AddScalar("arena_live_over_planned/" + tag, live_over_planned);
      report.AddScalar("heap_acquires_steady/" + tag,
                       static_cast<double>(arena_leg.heap_acquires));
    }
  }
  prof::Stop();
  return 0;
}
