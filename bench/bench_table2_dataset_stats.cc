// Regenerates Table II: statistics of the three (synthetic) datasets after
// preprocessing — session counts per split, item count, micro-behaviors.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader("Table II: statistics of the datasets used",
              "ICDE'22 EMBSR paper, Table II",
              "synthetic stand-ins for the JD/Trivago logs; counts scale "
              "with EMBSR_BENCH_SCALE, the paper's are ~100x larger");
  BenchReport report("table2_dataset_stats");

  std::vector<std::string> header = {"Datasets", "JD-Appliances",
                                     "JD-Computers", "Trivago"};
  std::vector<std::vector<std::string>> rows(5);
  rows[0] = {"# train"};
  rows[1] = {"# validation"};
  rows[2] = {"# test"};
  rows[3] = {"# items"};
  rows[4] = {"# micro-behavior"};

  for (const char* which : {"appliances", "computers", "trivago"}) {
    const ProcessedDataset data = LoadDataset(which);
    rows[0].push_back(std::to_string(data.train.size()));
    rows[1].push_back(std::to_string(data.valid.size()));
    rows[2].push_back(std::to_string(data.test.size()));
    rows[3].push_back(std::to_string(data.num_items));
    rows[4].push_back(std::to_string(data.TotalMicroBehaviors()));
    const std::string prefix = which;
    report.AddScalar(prefix + "/train_sessions",
                     static_cast<double>(data.train.size()));
    report.AddScalar(prefix + "/valid_sessions",
                     static_cast<double>(data.valid.size()));
    report.AddScalar(prefix + "/test_sessions",
                     static_cast<double>(data.test.size()));
    report.AddScalar(prefix + "/items",
                     static_cast<double>(data.num_items));
    report.AddScalar(prefix + "/micro_behaviors",
                     static_cast<double>(data.TotalMicroBehaviors()));
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());

  std::printf(
      "Paper reference (full-size logs):\n"
      "  train 583,255 / 577,301 / 260,877; items 75,159 / 93,140 / "
      "183,561;\n  micro-behaviors 32.7M / 24.2M / 5.7M.\n"
      "The synthetic sets preserve the *relations*: Trivago has the most\n"
      "items relative to sessions, the fewest operations (6 vs 10), and\n"
      "the fewest micro-behaviors per session.\n");
  return 0;
}
