// Engineering micro-benchmarks of the substrate the models run on:
// tensor kernels, autograd round-trips, GRU steps, session-graph
// construction and a full EMBSR forward/backward. These are google-benchmark
// timings, not paper reproductions; they bound the training throughput of
// every experiment harness in this repo.

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "autograd/ops.h"
#include "core/embsr_model.h"
#include "graph/session_graph.h"
#include "nn/layers.h"

namespace embsr {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, 1.0f, &rng);
  Tensor b = Tensor::Randn({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulThreaded(benchmark::State& state) {
  // Same kernel, explicit pool size: Args({n, threads}); threads 0 means
  // the EMBSR_THREADS / hardware default.
  const int64_t n = state.range(0);
  par::SetThreadCount(static_cast<int>(state.range(1)));
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, 1.0f, &rng);
  Tensor b = Tensor::Randn({n, n}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  par::SetThreadCount(0);
}
BENCHMARK(BM_MatMulThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 0});

void BM_ParForOverhead(benchmark::State& state) {
  // Fork-join cost of dispatching `range(0)` elements in 4k-index chunks
  // through the global pool (measures pool overhead, not compute).
  std::vector<float> v(static_cast<size_t>(state.range(0)), 1.0f);
  for (auto _ : state) {
    par::For(0, static_cast<int64_t>(v.size()), 1 << 12,
             [&](int64_t lo, int64_t hi) {
               for (int64_t i = lo; i < hi; ++i) v[static_cast<size_t>(i)] += 1.0f;
             });
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_ParForOverhead)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_RowSoftmax(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::Randn({64, state.range(0)}, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RowSoftmax(a));
  }
}
BENCHMARK(BM_RowSoftmax)->Arg(128)->Arg(1024);

void BM_AutogradRoundTrip(benchmark::State& state) {
  // Forward + backward through a small MLP-like graph.
  const int64_t d = state.range(0);
  Rng rng(3);
  ag::Variable w1(Tensor::Randn({d, d}, 0.1f, &rng), true);
  ag::Variable w2(Tensor::Randn({d, d}, 0.1f, &rng), true);
  Tensor x = Tensor::Randn({8, d}, 1.0f, &rng);
  for (auto _ : state) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    ag::Variable h = ag::Tanh(ag::MatMul(ag::Constant(x), w1));
    ag::Variable loss = ag::SumAll(ag::MatMul(h, w2));
    loss.Backward();
    benchmark::DoNotOptimize(w1.GradOrZeros());
  }
}
BENCHMARK(BM_AutogradRoundTrip)->Arg(32)->Arg(64);

void BM_GruStep(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(4);
  nn::GRUCell cell(d, d, &rng);
  ag::Variable x(Tensor::Randn({1, d}, 1.0f, &rng), false);
  ag::Variable h(Tensor::Zeros({1, d}), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.Forward(x, h));
  }
}
BENCHMARK(BM_GruStep)->Arg(32)->Arg(100);

void BM_SessionMultigraphBuild(benchmark::State& state) {
  Rng rng(5);
  std::vector<int64_t> seq;
  for (int i = 0; i < state.range(0); ++i) {
    seq.push_back(rng.UniformInt(state.range(0) / 2 + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SessionMultigraph::Build(seq));
  }
}
BENCHMARK(BM_SessionMultigraphBuild)->Arg(10)->Arg(50);

void BM_SrgnnAdjacencyBuild(benchmark::State& state) {
  Rng rng(6);
  std::vector<int64_t> seq;
  for (int i = 0; i < state.range(0); ++i) {
    seq.push_back(rng.UniformInt(state.range(0) / 2 + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSrgnnAdjacency(seq));
  }
}
BENCHMARK(BM_SrgnnAdjacencyBuild)->Arg(10)->Arg(50);

Example BenchExample() {
  Example ex;
  ex.macro_items = {1, 7, 3, 7, 3, 9, 12, 5};
  ex.macro_ops = {{0},       {0, 1},    {0},    {0, 4}, {0, 1, 2},
                  {0, 1, 4, 5}, {0}, {0, 1}};
  for (size_t i = 0; i < ex.macro_items.size(); ++i) {
    for (int64_t op : ex.macro_ops[i]) {
      ex.flat_items.push_back(ex.macro_items[i]);
      ex.flat_ops.push_back(op);
    }
  }
  ex.target = 6;
  return ex;
}

void BM_EmbsrInference(benchmark::State& state) {
  TrainConfig cfg;
  cfg.embedding_dim = state.range(0);
  EmbsrModel model("EMBSR", /*num_items=*/500, /*num_operations=*/10, cfg);
  model.SetTraining(false);
  const Example ex = BenchExample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreAll(ex));
  }
}
BENCHMARK(BM_EmbsrInference)->Arg(32)->Arg(100);

void BM_EmbsrTrainEpoch(benchmark::State& state) {
  // Full forward+backward+Adam over a 16-session epoch through the public
  // Fit path; reported time / 16 approximates the per-session train step.
  TrainConfig cfg;
  cfg.embedding_dim = state.range(0);
  cfg.epochs = 1;
  cfg.batch_size = 16;
  cfg.validate_every = 0;
  ProcessedDataset data;
  data.num_items = 500;
  data.num_operations = 10;
  for (int i = 0; i < 16; ++i) data.train.push_back(BenchExample());
  for (auto _ : state) {
    EmbsrModel model("EMBSR", data.num_items, data.num_operations, cfg);
    benchmark::DoNotOptimize(model.Fit(data));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_EmbsrTrainEpoch)->Arg(32);

// Measures MatMul(256^3) serial vs. pooled and records the ratio in the
// report's scalars — the machine-readable record of what the parallel
// substrate buys on this machine (1.0x on a single-core host, where the
// pool degrades to the serial path).
void RecordParallelSpeedup(bench::BenchReport* report) {
  Rng rng(7);
  Tensor a = Tensor::Randn({256, 256}, 1.0f, &rng);
  Tensor b = Tensor::Randn({256, 256}, 1.0f, &rng);
  const auto time_ms = [&](int reps) {
    WallTimer t;
    for (int i = 0; i < reps; ++i) benchmark::DoNotOptimize(MatMul(a, b));
    return t.ElapsedSeconds() * 1e3 / reps;
  };
  constexpr int kReps = 8;
  par::SetThreadCount(1);
  time_ms(2);  // warm caches before either timed leg
  const double serial_ms = time_ms(kReps);
  par::SetThreadCount(0);  // EMBSR_THREADS / hardware default
  time_ms(2);
  const double pool_ms = time_ms(kReps);
  report->AddScalar("matmul256_serial_ms", serial_ms);
  report->AddScalar("matmul256_pool_ms", pool_ms);
  report->AddScalar("matmul256_speedup",
                    pool_ms > 0.0 ? serial_ms / pool_ms : 0.0);
}

}  // namespace
}  // namespace embsr

// Expanded BENCHMARK_MAIN() so the run also leaves a machine-readable
// BENCH_micro_substrate.json (workload scale + metrics snapshot) behind;
// pass --benchmark_format=json for google-benchmark's own timing JSON.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  embsr::bench::BenchReport report("micro_substrate");
  benchmark::RunSpecifiedBenchmarks();
  embsr::RecordParallelSpeedup(&report);
  benchmark::Shutdown();
  return 0;
}
