// Regenerates Supplement Table I: macro-behavior baselines with the item
// sequence redefined by a single operation type (clicks for JD, click-outs
// for Trivago), compared against EMBSR which uses all operations. The
// ground truth of each sequence is kept consistent with the full data.

#include <cstdio>

#include "bench_common.h"
#include "train/model_zoo.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader(
      "Supplement Table I: single-operation item sequences for macro models",
      "ICDE'22 EMBSR paper, supplemental Table I",
      "BERT4Rec/SGNN-HN see click-only sequences; EMBSR sees everything — "
      "expect EMBSR's margin to hold or grow (esp. on Trivago)");
  BenchReport report("supp1_single_op");

  const std::vector<int> ks = {5, 10, 20};
  const TrainConfig cfg = BenchTrainConfig();

  for (const char* which : {"appliances", "computers", "trivago"}) {
    const ProcessedDataset full = LoadDataset(which);
    const ProcessedDataset single = LoadDatasetSingleOp(which);
    std::printf("(%s: single-op split has %zu/%zu train/test examples; "
                "full split %zu/%zu)\n",
                full.name.c_str(), single.train.size(), single.test.size(),
                full.train.size(), full.test.size());

    std::vector<ExperimentResult> results;
    results.push_back(RunExperiment("BERT4Rec", single, cfg, ks));
    results.push_back(RunExperiment("SGNN-HN", single, cfg, ks));
    results.push_back(RunExperiment("EMBSR", full, cfg, ks));
    std::printf("%s\n", FormatMetricTable(full.name, results, ks).c_str());
    report.AddResults(results);
  }
  return 0;
}
