// Chaos traffic driver for the embsr::serve frontend: Zipf-skewed session
// traffic with flash-crowd spikes, faults injected mid-run (scorer errors,
// store failures, injected scorer latency), reporting tail latency, QPS,
// shed rate and degraded fraction. The run itself is the test: the serving
// core must absorb every phase — overload sheds, faults degrade, nothing
// crashes and nothing exceeds its latency budget silently.
//
// Knobs: the EMBSR_SERVE_* family (see serve/frontend.h) plus
// EMBSR_BENCH_SCALE for traffic volume. Arming EMBSR_FAILPOINTS adds
// *external* chaos on top of the phases scripted here (the sanitizer
// matrix's chaos leg does exactly that).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "robust/failpoint.h"
#include "serve/frontend.h"
#include "train/model_zoo.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace embsr;         // NOLINT — bench binary
using namespace embsr::bench;  // NOLINT

double PercentileOf(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

int main() {
  PrintHeader("Serve chaos: tail latency under overload and injected faults",
              "robustness extension (no paper counterpart); serving the "
              "ICDE'22 EMBSR models online",
              "three phases: clean traffic, hard faults (scorer/store "
              "errors), slow dependency (injected scorer latency)");
  BenchReport report("serve_chaos");

  // A small JD-style dataset: the primary is a real trained model so the
  // full-price scoring path has realistic cost; the fallback is fit on the
  // same training split.
  const ProcessedDataset data = LoadDataset("appliances");

  TrainConfig tc = BenchTrainConfig();
  tc.epochs = 1;
  tc.validate_every = 0;
  auto primary = CreateModel("STAMP", data.num_items, data.num_operations, tc);
  EMBSR_CHECK(primary != nullptr);
  EMBSR_CHECK_OK(primary->Fit(data));
  primary->EnsureEvalMode();

  serve::PopularityScorer fallback;
  EMBSR_CHECK_OK(fallback.Fit(data));

  serve::ServeConfig cfg = serve::ServeConfig::FromEnv();
  cfg.queue_capacity = std::min<size_t>(cfg.queue_capacity, 64);
  serve::ServeFrontend frontend(cfg, primary.get(), &fallback);

  // Micro-behavior streams to replay, rebuilt from the processed test split
  // (same contiguous item/op vocabulary the model was trained on); session
  // popularity is Zipf-skewed so a handful of hot sessions dominate, as in
  // production traffic.
  std::vector<Session> sessions;
  for (const Example& ex : data.test.empty() ? data.train : data.test) {
    Session s;
    for (size_t i = 0; i < ex.flat_items.size(); ++i) {
      s.events.push_back(MicroBehavior{ex.flat_items[i], ex.flat_ops[i]});
    }
    if (!s.events.empty()) sessions.push_back(std::move(s));
  }
  EMBSR_CHECK(!sessions.empty());
  const std::vector<double> session_weights =
      ZipfWeights(sessions.size(), 1.0);
  std::vector<size_t> cursors(sessions.size(), 0);
  Rng traffic(DeriveSeed(cfg.seed, 0xC4A05));

  const int steps = std::max(200, static_cast<int>(2000 * BenchScale()));
  const int fault_begin = steps / 3;
  const int slow_begin = 2 * steps / 3;
  // A flash crowd every 100 steps: 3x the drain rate for 15 steps, which
  // overflows the 64-slot queue and forces shedding.
  auto in_spike = [](int step) { return step % 100 >= 85; };

  uint64_t next_request_id = 1;
  int64_t submitted = 0;
  int64_t shed = 0;
  std::vector<serve::ServeResponse> responses;
  WallTimer wall;

  for (int step = 0; step < steps; ++step) {
    if (step == fault_begin) {
      // Phase 2: hard faults. Scorer fails 30% of calls (enough to trip
      // the breaker during bursts), the store 10%.
      EMBSR_CHECK_OK(robust::Failpoints::Global().Configure(
          "serve.score=0.3,serve.store_read=0.1"));
    }
    if (step == slow_begin) {
      // Phase 3: the dependency is up but slow — 20% of scorer calls
      // stall 25 ms against a 50 ms default budget.
      EMBSR_CHECK_OK(robust::Failpoints::Global().Configure(
          "serve.score=0.2@25ms,serve.store_read=0"));
    }
    const int arrivals = in_spike(step) ? 12 : 2;
    for (int a = 0; a < arrivals; ++a) {
      const size_t sidx = traffic.Categorical(session_weights);
      const auto& events = sessions[sidx].events;
      serve::Request req;
      req.request_id = next_request_id++;
      req.session_id = static_cast<uint64_t>(sidx);
      req.event = events[cursors[sidx] % events.size()];
      ++cursors[sidx];
      ++submitted;
      const Status s = frontend.Submit(req);
      if (!s.ok()) {
        EMBSR_CHECK(s.code() == StatusCode::kResourceExhausted);
        ++shed;
      }
    }
    for (int d = 0; d < 4 && frontend.queue_depth() > 0; ++d) {
      auto r = frontend.ProcessNext();
      EMBSR_CHECK_OK(r);
      responses.push_back(std::move(r).value());
    }
  }
  robust::Failpoints::Global().ReinitFromEnv();
  for (auto& resp : frontend.ProcessAll()) responses.push_back(resp);
  const double wall_seconds = wall.ElapsedSeconds();

  int64_t answered = 0;
  int64_t degraded = 0;
  int64_t expired = 0;
  std::vector<double> latencies;
  latencies.reserve(responses.size());
  for (const auto& resp : responses) {
    latencies.push_back(resp.latency_ms);
    if (resp.status.ok()) {
      ++answered;
      EMBSR_CHECK(!resp.top_items.empty());
      EMBSR_CHECK(resp.top_items.size() <= cfg.top_k);
      if (resp.degraded) {
        ++degraded;
        EMBSR_CHECK(!resp.degraded_reason.empty());
      }
    } else {
      EMBSR_CHECK(resp.status.code() == StatusCode::kDeadlineExceeded);
      ++expired;
    }
  }
  EMBSR_CHECK(static_cast<int64_t>(responses.size()) == submitted - shed);

  const double p50 = PercentileOf(latencies, 50.0);
  const double p99 = PercentileOf(latencies, 99.0);
  const double qps =
      wall_seconds > 0 ? static_cast<double>(responses.size()) / wall_seconds
                       : 0.0;
  const double shed_rate =
      submitted > 0 ? static_cast<double>(shed) / static_cast<double>(submitted)
                    : 0.0;
  const double degraded_fraction =
      answered > 0
          ? static_cast<double>(degraded) / static_cast<double>(answered)
          : 0.0;

  std::printf("traffic: %lld submitted, %lld shed, %lld answered "
              "(%lld degraded), %lld abandoned past deadline\n",
              static_cast<long long>(submitted), static_cast<long long>(shed),
              static_cast<long long>(answered),
              static_cast<long long>(degraded),
              static_cast<long long>(expired));
  std::printf("latency: p50 %.3f ms, p99 %.3f ms | %.0f qps | "
              "shed %.1f%% | degraded %.1f%%\n",
              p50, p99, qps, 100.0 * shed_rate, 100.0 * degraded_fraction);
  std::printf("store: %zu live sessions, %lld evictions | breaker state %d\n",
              frontend.store().size(),
              static_cast<long long>(frontend.store().evictions()),
              static_cast<int>(frontend.breaker().state()));

  report.AddScalar("latency_p50_ms", p50);
  report.AddScalar("latency_p99_ms", p99);
  report.AddScalar("qps", qps);
  report.AddScalar("shed_rate", shed_rate);
  report.AddScalar("degraded_fraction", degraded_fraction);
  report.AddScalar("requests_submitted", static_cast<double>(submitted));
  report.AddScalar("requests_answered", static_cast<double>(answered));
  report.AddScalar("deadline_abandoned", static_cast<double>(expired));
  return 0;
}
