// Regenerates Table IV: ablation studies — EMBSR against EMBSR-NS (no
// operation-aware self-attention), EMBSR-NG (no GNN), EMBSR-NF (no fusion
// gate), at K = 10, 20.

#include <cstdio>

#include "bench_common.h"
#include "train/model_zoo.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader("Table IV: performances (%) of ablation studies",
              "ICDE'22 EMBSR paper, Table IV",
              "expected shape: full EMBSR best overall; single-pattern "
              "variants (NS/NG) weakest on the JD datasets");
  BenchReport report("table4_ablation");

  const std::vector<int> ks = {10, 20};
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<std::string> variants = {"EMBSR-NS", "EMBSR-NG",
                                             "EMBSR-NF", "EMBSR"};

  for (const char* which : {"appliances", "computers", "trivago"}) {
    const ProcessedDataset data = LoadDataset(which);
    // Parallel cells, input order, per-cell numbers unchanged (see
    // RunExperimentCells).
    std::vector<ExperimentResult> results =
        RunExperimentCells(variants, data, cfg, ks);
    std::printf("%s\n", FormatMetricTable(data.name, results, ks).c_str());
    report.AddResults(results);
  }
  return 0;
}
