// Regenerates Supplement Table II: grafting the dyadic encoding onto the
// best macro baseline. Compares SGNN-HN, EMBSR-Dyadic (= SGNN-Dyadic: star
// GNN + dyadic operation-aware attention, no micro-op GRU) and full EMBSR
// on the two JD datasets.

#include <cstdio>

#include "bench_common.h"
#include "train/model_zoo.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader(
      "Supplement Table II: dyadic encoding applied to SGNN-HN",
      "ICDE'22 EMBSR paper, supplemental Table II",
      "expected shape: SGNN-Dyadic beats SGNN-HN on M@K; full EMBSR best");
  BenchReport report("supp2_sgnnhn_dyadic");

  const std::vector<int> ks = {5, 10, 20};
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<std::string> variants = {"SGNN-HN", "SGNN-Dyadic",
                                             "EMBSR"};

  for (const char* which : {"appliances", "computers"}) {
    const ProcessedDataset data = LoadDataset(which);
    std::vector<ExperimentResult> results;
    for (const std::string& name : variants) {
      results.push_back(RunExperiment(name, data, cfg, ks));
    }
    std::printf("%s\n", FormatMetricTable(data.name, results, ks).c_str());
    report.AddResults(results);
  }
  return 0;
}
