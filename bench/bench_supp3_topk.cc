// Regenerates Supplement Table III: performances at K = 1, 3, 5 for the
// headline systems on all three datasets (H@1 == M@1 by construction; the
// harness asserts that identity as the paper notes it).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "train/model_zoo.h"
#include "util/check.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader("Supplement Table III: performances (%) at K = 1, 3, 5",
              "ICDE'22 EMBSR paper, supplemental Table III",
              "headline subset of systems; EMBSR leads on JD, top-1 on "
              "Trivago is hard for everyone (ground truth unseen)");
  BenchReport report("supp3_topk");

  const std::vector<int> ks = {1, 3, 5};
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<std::string> models = {"S-POP",  "SKNN",    "STAMP",
                                           "SR-GNN", "SGNN-HN", "MKM-SR",
                                           "EMBSR"};

  for (const char* which : {"appliances", "computers", "trivago"}) {
    const ProcessedDataset data = LoadDataset(which);
    std::vector<ExperimentResult> results;
    for (const std::string& name : models) {
      results.push_back(RunExperiment(name, data, cfg, ks));
      // The paper's observation: H@1 and M@1 coincide.
      const auto& rep = results.back().eval.report;
      EMBSR_CHECK(std::fabs(rep.hit.at(1) - rep.mrr.at(1)) < 1e-9);
    }
    std::printf("%s\n", FormatMetricTable(data.name, results, ks).c_str());
    report.AddResults(results);
  }
  return 0;
}
