// Regenerates Fig. 6: utility of the fusion gating mechanism. Sweeps a
// fixed fusion weight beta over {0, 0.2, 0.4, 0.6, 0.8, 1} and compares
// against the learned gate (full EMBSR) on the JD datasets at K = 10, 20.

#include <cstdio>

#include "bench_common.h"
#include "core/embsr_model.h"
#include "train/evaluator.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader(
      "Fig. 6: utility of the fusion gating mechanism (beta sweep)",
      "ICDE'22 EMBSR paper, Fig. 6 (line charts on Appliances/Computers)",
      "expected shape: beta=0 (recent interest only) worst; larger beta "
      "competitive; the learned gate best or tied-best");
  BenchReport report("fig6_fusion");

  const std::vector<int> ks = {10, 20};
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<float> betas = {0.0f, 0.2f, 0.4f, 0.6f, 0.8f, 1.0f};

  for (const char* which : {"appliances", "computers"}) {
    const ProcessedDataset data = LoadDataset(which);
    std::printf("Dataset: %s\n", data.name.c_str());
    std::printf("%8s  %8s  %8s  %8s  %8s\n", "beta", "H@10", "H@20", "M@10",
                "M@20");
    auto run_one = [&](const std::string& label, const EmbsrConfig& vc) {
      EmbsrModel model(label, data.num_items, data.num_operations, cfg, vc);
      EMBSR_CHECK_OK(model.Fit(data));
      EvalResult r = Evaluate(&model, data.test, ks);
      std::printf("%8s  %8.2f  %8.2f  %8.2f  %8.2f\n", label.c_str(),
                  r.report.hit.at(10), r.report.hit.at(20),
                  r.report.mrr.at(10), r.report.mrr.at(20));
      const std::string prefix = std::string(which) + "/beta_" + label;
      report.AddScalar(prefix + "/h20", r.report.hit.at(20));
      report.AddScalar(prefix + "/m20", r.report.mrr.at(20));
    };
    for (float beta : betas) {
      char label[16];
      std::snprintf(label, sizeof(label), "%.1f", beta);
      run_one(label, EmbsrVariants::FixedBeta(beta));
    }
    run_one("gate", EmbsrVariants::Full());
    std::printf("\n");
  }
  return 0;
}
