// Extension ablation (the paper's future-work proposal, Sec. VI): learned
// per-operation importance gates (EMBSR-W) vs the plain model, plus the
// extra classic baselines (GRU4Rec, FPMC, STAN) as sanity anchors — a
// first-order Markov model should sit near the bottom of the table.

#include <cstdio>

#include "bench_common.h"
#include "train/model_zoo.h"

int main() {
  using namespace embsr;         // NOLINT — bench binary
  using namespace embsr::bench;  // NOLINT
  PrintHeader(
      "Extension: operation-importance weighting + extra baselines",
      "ICDE'22 EMBSR paper, Sec. VI future work (not a paper table)",
      "EMBSR-W learns sigmoid gates over operations; expect it to match or "
      "edge out EMBSR where noise operations (hover/filter) dilute the "
      "signal. FPMC/GRU4Rec anchor the bottom of the table.");
  BenchReport report("ext_op_importance");

  const std::vector<int> ks = {10, 20};
  const TrainConfig cfg = BenchTrainConfig();
  const std::vector<std::string> models = {"FPMC",  "GRU4Rec", "STAN",
                                           "EMBSR", "EMBSR-W"};

  for (const char* which : {"appliances", "computers"}) {
    const ProcessedDataset data = LoadDataset(which);
    std::vector<ExperimentResult> results;
    for (const std::string& name : models) {
      results.push_back(RunExperiment(name, data, cfg, ks));
    }
    std::printf("%s\n", FormatMetricTable(data.name, results, ks).c_str());
    report.AddResults(results);
  }
  return 0;
}
