#!/usr/bin/env python3
"""Diff the `profile` blocks of two BENCH_*.json reports with thresholds.

Compares a baseline report against a current one (both schema-v3 files as
written by bench_common.h, or bare profile objects) and fails when any
watched metric regresses past its threshold:

  - per-op forward_ms / backward_ms   (--max-op-regress-pct, default 30,
                                       ops under --min-ms are ignored —
                                       timer noise dominates tiny ops)
  - attributed_forward_ms, attributed_backward_ms, step_ms totals
                                      (--max-total-regress-pct, default 20)
  - memory.peak_bytes                 (--max-peak-regress-pct, default 10 —
                                       byte counts are deterministic, so the
                                       allowance is small)

Ops that appear only in the current profile are reported as "new" but do
not fail the diff (a new op has no baseline to regress from); ops that
vanish are reported as "gone". Improvements are printed for the record.

Usage:
  profile_diff.py BASELINE.json CURRENT.json [--max-op-regress-pct N]
                  [--max-total-regress-pct N] [--max-peak-regress-pct N]
                  [--min-ms MS]
  profile_diff.py --self-test

Exit codes: 0 clean, 1 regression found, 2 usage/IO error. Stdlib only.
"""

import argparse
import copy
import json
import sys

TOTAL_KEYS = ("step_ms", "attributed_forward_ms", "attributed_backward_ms")


def load_profile(path):
    """Accepts a full BENCH_*.json (takes its 'profile') or a bare block."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level must be an object")
    profile = doc.get("profile", doc)
    if not isinstance(profile, dict) or "top_ops" not in profile:
        raise ValueError(f"{path}: no usable 'profile' block")
    return profile


def _ops_by_name(profile):
    out = {}
    for row in profile.get("top_ops", []):
        if isinstance(row, dict) and isinstance(row.get("op"), str):
            out[row["op"]] = row
    return out


def _pct(baseline, current):
    return (current / baseline - 1.0) * 100.0


def diff_profiles(baseline, current, opts):
    """Returns (regressions, notes): lists of human-readable lines."""
    regressions = []
    notes = []

    for key in TOTAL_KEYS:
        b = baseline.get(key)
        c = current.get(key)
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            continue
        if b < opts.min_ms:
            continue
        pct = _pct(b, c)
        line = f"total {key}: {b:.3f} -> {c:.3f} ms ({pct:+.1f}%)"
        if pct > opts.max_total_regress_pct:
            regressions.append(line)
        elif pct < -opts.max_total_regress_pct:
            notes.append("improved " + line)

    base_ops = _ops_by_name(baseline)
    cur_ops = _ops_by_name(current)
    for name in sorted(set(base_ops) | set(cur_ops)):
        if name not in base_ops:
            notes.append(f"new op {name!r} (no baseline)")
            continue
        if name not in cur_ops:
            notes.append(f"op {name!r} gone from current profile")
            continue
        for key in ("forward_ms", "backward_ms"):
            b = base_ops[name].get(key, 0.0)
            c = cur_ops[name].get(key, 0.0)
            if not isinstance(b, (int, float)) \
                    or not isinstance(c, (int, float)) or b < opts.min_ms:
                continue
            pct = _pct(b, c)
            line = (f"op {name} {key}: {b:.3f} -> {c:.3f} ms "
                    f"({pct:+.1f}%)")
            if pct > opts.max_op_regress_pct:
                regressions.append(line)
            elif pct < -opts.max_op_regress_pct:
                notes.append("improved " + line)

    b_peak = baseline.get("memory", {}).get("peak_bytes")
    c_peak = current.get("memory", {}).get("peak_bytes")
    if isinstance(b_peak, (int, float)) and isinstance(c_peak, (int, float)) \
            and b_peak > 0:
        pct = _pct(b_peak, c_peak)
        line = f"memory.peak_bytes: {b_peak:.0f} -> {c_peak:.0f} ({pct:+.1f}%)"
        if pct > opts.max_peak_regress_pct:
            regressions.append(line)
        elif pct < -opts.max_peak_regress_pct:
            notes.append("improved " + line)

    return regressions, notes


def _parser():
    p = argparse.ArgumentParser(
        description="Diff two BENCH json profile blocks with thresholds.")
    p.add_argument("baseline", nargs="?")
    p.add_argument("current", nargs="?")
    p.add_argument("--max-op-regress-pct", type=float, default=30.0)
    p.add_argument("--max-total-regress-pct", type=float, default=20.0)
    p.add_argument("--max-peak-regress-pct", type=float, default=10.0)
    p.add_argument("--min-ms", type=float, default=1.0,
                   help="ignore per-op / total times below this baseline ms")
    p.add_argument("--self-test", action="store_true")
    return p


# ---- Self-test ---------------------------------------------------------------


def _synthetic_profile():
    return {
        "enabled": True,
        "profiled_seconds": 2.0,
        "steps": 10,
        "step_ms": 1000.0,
        "attributed_forward_ms": 600.0,
        "attributed_backward_ms": 350.0,
        "top_ops": [
            {"op": "MatMul", "calls": 100, "forward_ms": 400.0,
             "backward_calls": 100, "backward_ms": 250.0,
             "flops": 1e9, "bytes_read": 4e8, "bytes_written": 1e8,
             "alloc_bytes": 1e8},
            {"op": "Sigmoid", "calls": 100, "forward_ms": 50.0,
             "backward_calls": 100, "backward_ms": 20.0,
             "flops": 1e7, "bytes_read": 1e7, "bytes_written": 1e7,
             "alloc_bytes": 1e6},
            {"op": "Row", "calls": 400, "forward_ms": 0.2,
             "backward_calls": 400, "backward_ms": 0.1,
             "flops": 0, "bytes_read": 1e5, "bytes_written": 1e5,
             "alloc_bytes": 1e4},
        ],
        "memory": {"live_bytes": 0, "peak_bytes": 1 << 20,
                   "alloc_count": 1000, "free_count": 1000,
                   "alloc_bytes_total": 1 << 24,
                   "timeline_events": 0, "timeline_dropped": 0},
    }


def self_test():
    failures = []
    opts = _parser().parse_args(["x", "y"])

    base = _synthetic_profile()

    # Identical profiles must be clean.
    regs, _ = diff_profiles(base, copy.deepcopy(base), opts)
    if regs:
        failures.append(f"identical profiles flagged: {regs}")

    # The acceptance case: an injected 2x regression on a hot op must fail.
    worse = copy.deepcopy(base)
    worse["top_ops"][0]["forward_ms"] *= 2.0
    regs, _ = diff_profiles(base, worse, opts)
    if not any("op MatMul forward_ms" in r for r in regs):
        failures.append(f"2x MatMul regression not flagged: {regs}")

    # A 2x blowup on a sub-min-ms op is timer noise, not a regression.
    noisy = copy.deepcopy(base)
    noisy["top_ops"][2]["forward_ms"] *= 2.0
    regs, _ = diff_profiles(base, noisy, opts)
    if regs:
        failures.append(f"sub-min-ms op flagged: {regs}")

    # Totals regress past their own threshold.
    slow = copy.deepcopy(base)
    slow["step_ms"] *= 1.5
    regs, _ = diff_profiles(base, slow, opts)
    if not any("total step_ms" in r for r in regs):
        failures.append(f"step_ms regression not flagged: {regs}")

    # Peak memory has the tightest allowance.
    fat = copy.deepcopy(base)
    fat["memory"]["peak_bytes"] = int(fat["memory"]["peak_bytes"] * 1.2)
    regs, _ = diff_profiles(base, fat, opts)
    if not any("memory.peak_bytes" in r for r in regs):
        failures.append(f"peak_bytes regression not flagged: {regs}")

    # A new op is a note, never a failure.
    extra = copy.deepcopy(base)
    extra["top_ops"].append({"op": "Tanh", "forward_ms": 100.0,
                             "backward_ms": 50.0})
    regs, notes = diff_profiles(base, extra, opts)
    if regs or not any("new op 'Tanh'" in n for n in notes):
        failures.append(f"new op mishandled: regs={regs} notes={notes}")

    # Improvements are reported, not flagged.
    fast = copy.deepcopy(base)
    fast["top_ops"][0]["forward_ms"] /= 2.0
    regs, notes = diff_profiles(base, fast, opts)
    if regs or not any("improved op MatMul" in n for n in notes):
        failures.append(f"improvement mishandled: regs={regs} notes={notes}")

    for msg in failures:
        print(f"self-test: {msg}", file=sys.stderr)
    print(f"self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    opts = _parser().parse_args(argv)
    if opts.self_test:
        return self_test()
    if not opts.baseline or not opts.current:
        print("need BASELINE and CURRENT paths (or --self-test)",
              file=sys.stderr)
        return 2
    try:
        baseline = load_profile(opts.baseline)
        current = load_profile(opts.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"profile_diff: {e}", file=sys.stderr)
        return 2
    regressions, notes = diff_profiles(baseline, current, opts)
    for n in notes:
        print(f"note: {n}")
    for r in regressions:
        print(f"REGRESSION: {r}", file=sys.stderr)
    if regressions:
        return 1
    print(f"ok: no regressions "
          f"({opts.baseline} -> {opts.current})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
