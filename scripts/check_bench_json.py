#!/usr/bin/env python3
"""Validate BENCH_<name>.json sidecar files against the schema (v2).

Every bench binary in this repo writes a machine-readable report next to its
human-readable table (see BenchReport in bench/bench_common.h). This script
checks those reports structurally so CI catches a bench that silently stops
emitting results or breaks the JSON contract.

Usage:
  check_bench_json.py FILE [FILE ...]      validate existing report files
  check_bench_json.py --run BIN [ARG ...]  run a bench binary in a fresh
                                           temp dir, then validate every
                                           BENCH_*.json it produced
  check_bench_json.py --self-test          prove the validator still rejects
                                           seeded schema violations (the
                                           'threads' field rules included)
                                           and accepts a well-formed report

Exits non-zero and prints one line per problem on failure. Stdlib only.
"""

import glob
import json
import os
import subprocess
import sys
import tempfile

SCHEMA_VERSION = 2

RESULT_KEYS = {
    "model": str,
    "dataset": str,
    "status": str,
    "fit_seconds": (int, float),
    "eval_seconds": (int, float),
    "hit": dict,
    "mrr": dict,
}


def _err(errors, path, msg):
    errors.append(f"{path}: {msg}")


def _check_number_map(errors, path, obj, where):
    """A {name: number} object, e.g. scalars or hit/mrr cutoff maps."""
    if not isinstance(obj, dict):
        _err(errors, path, f"{where} must be an object, got {type(obj).__name__}")
        return
    for k, v in obj.items():
        if v is not None and not isinstance(v, (int, float)):
            _err(errors, path, f"{where}[{k!r}] must be a number, got {v!r}")


def check_report(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        _err(errors, path, f"not readable as JSON: {e}")
        return

    if not isinstance(doc, dict):
        _err(errors, path, "top level must be an object")
        return

    if doc.get("schema_version") != SCHEMA_VERSION:
        _err(errors, path,
             f"schema_version must be {SCHEMA_VERSION}, "
             f"got {doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        _err(errors, path, "missing or empty 'bench' name")
    else:
        expected = f"BENCH_{doc['bench']}.json"
        if os.path.basename(path) != expected:
            _err(errors, path, f"file name should be {expected}")

    # Optional: the par:: pool's lane count at report time. Older reports
    # predate the field; when present it must be a positive integer.
    if "threads" in doc:
        threads = doc["threads"]
        if not isinstance(threads, int) or isinstance(threads, bool) \
                or threads < 1:
            _err(errors, path,
                 f"'threads' must be a positive integer, got {threads!r}")

    workload = doc.get("workload")
    if not isinstance(workload, dict):
        _err(errors, path, "missing 'workload' object")
    else:
        for key in ("bench_scale", "dataset_scale"):
            if not isinstance(workload.get(key), (int, float)):
                _err(errors, path, f"workload.{key} must be a number")

    if not isinstance(doc.get("wall_seconds"), (int, float)):
        _err(errors, path, "wall_seconds must be a number")
    elif doc["wall_seconds"] < 0:
        _err(errors, path, "wall_seconds must be non-negative")

    results = doc.get("results")
    if not isinstance(results, list):
        _err(errors, path, "'results' must be an array")
        results = []
    for i, r in enumerate(results):
        if not isinstance(r, dict):
            _err(errors, path, f"results[{i}] must be an object")
            continue
        for key, want in RESULT_KEYS.items():
            if key not in r:
                _err(errors, path, f"results[{i}] missing key {key!r}")
            elif not isinstance(r[key], want):
                _err(errors, path,
                     f"results[{i}].{key} has wrong type "
                     f"({type(r[key]).__name__})")
        status = r.get("status")
        if isinstance(status, str) and status not in ("ok", "failed"):
            _err(errors, path,
                 f"results[{i}].status must be 'ok' or 'failed', "
                 f"got {status!r}")
        if status == "failed":
            # A failed cell carries an error string and may have empty
            # hit/mrr maps; an ok cell must actually report metrics.
            if not isinstance(r.get("error"), str) or not r.get("error"):
                _err(errors, path,
                     f"results[{i}] is failed but has no 'error' string")
        elif status == "ok":
            if "error" in r:
                _err(errors, path,
                     f"results[{i}] is ok but carries an 'error'")
            for cutoffs in ("hit", "mrr"):
                if isinstance(r.get(cutoffs), dict) and not r[cutoffs]:
                    _err(errors, path,
                         f"results[{i}].{cutoffs} is empty on an ok cell")
        for cutoffs in ("hit", "mrr"):
            if isinstance(r.get(cutoffs), dict):
                _check_number_map(errors, path, r[cutoffs],
                                  f"results[{i}].{cutoffs}")
                for k in r[cutoffs]:
                    if not k.isdigit():
                        _err(errors, path,
                             f"results[{i}].{cutoffs} cutoff {k!r} "
                             "is not an integer")

    _check_number_map(errors, path, doc.get("scalars", {}), "scalars")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        _err(errors, path, "missing 'metrics' snapshot object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                _err(errors, path, f"metrics.{section} missing")
        _check_number_map(errors, path, metrics.get("counters", {}),
                          "metrics.counters")
        _check_number_map(errors, path, metrics.get("gauges", {}),
                          "metrics.gauges")
        hists = metrics.get("histograms", {})
        if not isinstance(hists, dict):
            _err(errors, path, "metrics.histograms must be an object")
            hists = {}
        for name, h in hists.items():
            if not isinstance(h, dict):
                _err(errors, path, f"histogram {name!r} must be an object")
                continue
            bounds = h.get("bounds")
            counts = h.get("counts")
            if not isinstance(bounds, list) or not isinstance(counts, list):
                _err(errors, path,
                     f"histogram {name!r} needs 'bounds' and 'counts' arrays")
                continue
            if len(counts) != len(bounds) + 1:
                _err(errors, path,
                     f"histogram {name!r}: len(counts)={len(counts)} != "
                     f"len(bounds)+1={len(bounds) + 1}")
            if isinstance(h.get("count"), int) and sum(counts) != h["count"]:
                _err(errors, path,
                     f"histogram {name!r}: bucket counts sum to "
                     f"{sum(counts)}, 'count' says {h['count']}")

    # A report with neither results nor scalars carries no data at all;
    # flag it (bench_micro_substrate still has its metrics snapshot, and
    # google-benchmark owns its timing numbers, so metrics-only is fine
    # when results/scalars are both present-but-empty only for that bench).
    if not results and not doc.get("scalars") and not doc.get("metrics"):
        _err(errors, path, "report carries no results, scalars, or metrics")


def run_and_collect(argv):
    """Run a bench binary in a fresh temp dir; return produced report paths."""
    binary = os.path.abspath(argv[0])
    with tempfile.TemporaryDirectory(prefix="embsr_bench_json_") as tmp:
        env = dict(os.environ, EMBSR_BENCH_JSON_DIR=tmp)
        proc = subprocess.run([binary] + argv[1:], env=env, cwd=tmp,
                              stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"{binary}: exited with {proc.returncode}", file=sys.stderr)
            return 1
        reports = sorted(glob.glob(os.path.join(tmp, "BENCH_*.json")))
        if not reports:
            print(f"{binary}: produced no BENCH_*.json in {tmp}",
                  file=sys.stderr)
            return 1
        errors = []
        for path in reports:
            check_report(path, errors)
        for e in errors:
            print(e, file=sys.stderr)
        if not errors:
            for path in reports:
                print(f"ok: {os.path.basename(path)}")
        return 1 if errors else 0


# ---- Self-test ---------------------------------------------------------------


def _valid_report():
    """A minimal report that must validate cleanly."""
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "self_test",
        "threads": 4,
        "workload": {"bench_scale": 1.0, "dataset_scale": 1.0},
        "wall_seconds": 0.5,
        "results": [{
            "model": "S-POP",
            "dataset": "synth",
            "status": "ok",
            "fit_seconds": 0.1,
            "eval_seconds": 0.1,
            "hit": {"20": 0.5},
            "mrr": {"20": 0.25},
        }],
        "scalars": {},
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }


def _check_doc(doc, name):
    """Validates `doc` written to a correctly-named temp file."""
    errors = []
    with tempfile.TemporaryDirectory(prefix="embsr_bench_selftest_") as tmp:
        path = os.path.join(tmp, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        check_report(path, errors)
    return errors


def self_test():
    failures = []

    def expect_clean(doc, label):
        errors = _check_doc(doc, doc.get("bench", "self_test"))
        if errors:
            failures.append(f"{label}: unexpectedly rejected: {errors}")

    def expect_rejected(doc, label, needle):
        errors = _check_doc(doc, doc.get("bench", "self_test"))
        if not any(needle in e for e in errors):
            failures.append(
                f"{label}: expected an error containing {needle!r}, "
                f"got {errors}")

    expect_clean(_valid_report(), "valid report")

    # 'threads' is optional, but when present it must be a positive integer
    # (the par:: pool's lane count can never be 0, negative, fractional,
    # boolean, or a spelled-out word).
    absent = _valid_report()
    del absent["threads"]
    expect_clean(absent, "threads absent")
    for bad in ("four", 0, -1, True, 1.5, None):
        doc = _valid_report()
        doc["threads"] = bad
        expect_rejected(doc, f"threads={bad!r}",
                        "'threads' must be a positive integer")

    # Core schema rules the CI gate leans on.
    doc = _valid_report()
    doc["schema_version"] = SCHEMA_VERSION - 1
    expect_rejected(doc, "old schema_version", "schema_version must be")
    doc = _valid_report()
    doc["results"][0]["status"] = "failed"
    expect_rejected(doc, "failed without error", "has no 'error' string")
    doc = _valid_report()
    doc["results"][0]["hit"] = {}
    expect_rejected(doc, "empty hit map on ok cell", "is empty on an ok cell")

    for msg in failures:
        print(f"self-test: {msg}", file=sys.stderr)
    print(f"self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    if argv[0] == "--self-test":
        return self_test()
    if argv[0] == "--run":
        if len(argv) < 2:
            print("--run needs a binary path", file=sys.stderr)
            return 2
        return run_and_collect(argv[1:])
    errors = []
    for path in argv:
        check_report(path, errors)
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        for path in argv:
            print(f"ok: {path}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
