#!/usr/bin/env python3
"""Validate BENCH_<name>.json sidecar files against the schema (v3).

Every bench binary in this repo writes a machine-readable report next to its
human-readable table (see BenchReport in bench/bench_common.h). This script
checks those reports structurally so CI catches a bench that silently stops
emitting results or breaks the JSON contract. Schema v3 adds the mandatory
`profile` block (embsr::prof per-op attribution, memory watermarks, lane
utilization and a naive roofline estimate) — validated here so a bench that
stops emitting profiler data fails the gate even when EMBSR_PROF is unset.

The checker also rejects duplication the JSON layer would otherwise hide:
a key emitted twice anywhere in one file (e.g. the same scalar or bench name
written twice) and two result rows for the same (model, dataset) cell.

Usage:
  check_bench_json.py FILE [FILE ...]      validate existing report files
  check_bench_json.py --run BIN [ARG ...]  run a bench binary in a fresh
                                           temp dir, then validate every
                                           BENCH_*.json it produced
  check_bench_json.py --self-test          prove the validator still rejects
                                           seeded schema violations (the
                                           'threads' rules, the 'profile'
                                           block rules, and both duplicate
                                           rules included) and accepts a
                                           well-formed report

Exits non-zero and prints one line per problem on failure. Stdlib only.
"""

import glob
import json
import os
import subprocess
import sys
import tempfile

SCHEMA_VERSION = 3

RESULT_KEYS = {
    "model": str,
    "dataset": str,
    "status": str,
    "fit_seconds": (int, float),
    "eval_seconds": (int, float),
    "hit": dict,
    "mrr": dict,
}


# profile.top_ops[] / profile.components[] row metrics (besides the name).
PROFILE_ROW_KEYS = (
    "calls",
    "forward_ms",
    "backward_calls",
    "backward_ms",
    "flops",
    "bytes_read",
    "bytes_written",
    "alloc_bytes",
)

PROFILE_MEMORY_KEYS = (
    "live_bytes",
    "peak_bytes",
    "alloc_count",
    "free_count",
    "alloc_bytes_total",
    "timeline_events",
    "timeline_dropped",
)

PROFILE_ROOFLINE_KEYS = (
    "flops_total",
    "bytes_total",
    "intensity_flops_per_byte",
    "achieved_gflops",
    "achieved_gbytes_per_sec",
)


def _err(errors, path, msg):
    errors.append(f"{path}: {msg}")


class DuplicateKeyError(ValueError):
    pass


def _reject_duplicate_keys(pairs):
    """object_pairs_hook that refuses a key written twice in one object.

    json.load silently keeps the last value on duplicate keys, which would
    let a bench overwrite one scalar (or the bench name itself) with another
    of the same name and still validate. Surface it instead.
    """
    seen = set()
    for k, _ in pairs:
        if k in seen:
            raise DuplicateKeyError(f"duplicate key {k!r} within one object")
        seen.add(k)
    return dict(pairs)


def _check_number_map(errors, path, obj, where):
    """A {name: number} object, e.g. scalars or hit/mrr cutoff maps."""
    if not isinstance(obj, dict):
        _err(errors, path, f"{where} must be an object, got {type(obj).__name__}")
        return
    for k, v in obj.items():
        if v is not None and not isinstance(v, (int, float)):
            _err(errors, path, f"{where}[{k!r}] must be a number, got {v!r}")


def _check_nonneg_number(errors, path, obj, where, key):
    v = obj.get(key)
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        _err(errors, path, f"{where}.{key} must be a number, got {v!r}")
    elif v < 0:
        _err(errors, path, f"{where}.{key} must be non-negative, got {v!r}")


def _check_profile_rows(errors, path, rows, where, name_key):
    if not isinstance(rows, list):
        _err(errors, path, f"{where} must be an array")
        return
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            _err(errors, path, f"{where}[{i}] must be an object")
            continue
        if not isinstance(row.get(name_key), str) or not row.get(name_key):
            _err(errors, path,
                 f"{where}[{i}] missing non-empty {name_key!r} string")
        for key in PROFILE_ROW_KEYS:
            _check_nonneg_number(errors, path, row, f"{where}[{i}]", key)


def _check_profile(errors, path, profile):
    """The schema-v3 `profile` block written by embsr::prof::ProfileJson().

    Always present; with EMBSR_PROF unset it is `"enabled": false` with
    empty tables, but the shape contract holds either way.
    """
    if not isinstance(profile, dict):
        _err(errors, path, "missing 'profile' object (schema v3)")
        return
    if not isinstance(profile.get("enabled"), bool):
        _err(errors, path, "profile.enabled must be a boolean")
    for key in ("profiled_seconds", "steps", "step_ms",
                "attributed_forward_ms", "attributed_backward_ms"):
        _check_nonneg_number(errors, path, profile, "profile", key)
    _check_profile_rows(errors, path, profile.get("top_ops"),
                        "profile.top_ops", "op")
    _check_profile_rows(errors, path, profile.get("components"),
                        "profile.components", "component")

    memory = profile.get("memory")
    if not isinstance(memory, dict):
        _err(errors, path, "profile.memory must be an object")
    else:
        for key in PROFILE_MEMORY_KEYS:
            _check_nonneg_number(errors, path, memory, "profile.memory", key)

    lanes = profile.get("lanes")
    if not isinstance(lanes, list):
        _err(errors, path, "profile.lanes must be an array")
    else:
        for i, lane in enumerate(lanes):
            if not isinstance(lane, dict):
                _err(errors, path, f"profile.lanes[{i}] must be an object")
                continue
            for key in ("lane", "busy_ms", "idle_ms", "chunks"):
                _check_nonneg_number(errors, path, lane,
                                     f"profile.lanes[{i}]", key)

    if not isinstance(profile.get("pool"), dict):
        _err(errors, path, "profile.pool must be an object")

    roofline = profile.get("roofline")
    if not isinstance(roofline, dict):
        _err(errors, path, "profile.roofline must be an object")
    else:
        for key in PROFILE_ROOFLINE_KEYS:
            _check_nonneg_number(errors, path, roofline,
                                 "profile.roofline", key)

    # An enabled profile with recorded steps must attribute them somewhere.
    if profile.get("enabled") is True and profile.get("steps", 0) \
            and not profile.get("top_ops"):
        _err(errors, path,
             "profile is enabled with steps recorded but top_ops is empty")


# Scalars every serve-bench report must carry (bench names starting with
# "serve"): the chaos driver's headline numbers. Rates are fractions in
# [0, 1]; latency percentiles must be ordered; throughput non-negative.
SERVE_REQUIRED_SCALARS = (
    "latency_p50_ms",
    "latency_p99_ms",
    "qps",
    "shed_rate",
    "degraded_fraction",
)


def _check_serve_scalars(errors, path, doc):
    """Serve sidecar rules.

    The presence-based checks apply to *any* report that emits these keys,
    so a non-serve bench reusing the names still gets range-checked; the
    completeness check (all five keys) binds only benches named serve*.
    """
    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        return
    bench = doc.get("bench")
    if isinstance(bench, str) and bench.startswith("serve"):
        for key in SERVE_REQUIRED_SCALARS:
            if key not in scalars:
                _err(errors, path, f"serve bench missing scalar {key!r}")

    def num(key):
        v = scalars.get(key)
        return v if isinstance(v, (int, float)) and not isinstance(v, bool) \
            else None

    for key in ("shed_rate", "degraded_fraction"):
        v = num(key)
        if v is not None and not 0.0 <= v <= 1.0:
            _err(errors, path,
                 f"scalars.{key} must be a fraction in [0, 1], got {v!r}")
    qps = num("qps")
    if qps is not None and qps < 0:
        _err(errors, path, f"scalars.qps must be non-negative, got {qps!r}")
    p50, p99 = num("latency_p50_ms"), num("latency_p99_ms")
    for key, v in (("latency_p50_ms", p50), ("latency_p99_ms", p99)):
        if v is not None and v < 0:
            _err(errors, path,
                 f"scalars.{key} must be non-negative, got {v!r}")
    if p50 is not None and p99 is not None and p50 > p99:
        _err(errors, path,
             f"scalars.latency_p50_ms ({p50!r}) exceeds "
             f"latency_p99_ms ({p99!r})")


def check_report(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f, object_pairs_hook=_reject_duplicate_keys)
    except DuplicateKeyError as e:
        _err(errors, path, str(e))
        return
    except (OSError, json.JSONDecodeError) as e:
        _err(errors, path, f"not readable as JSON: {e}")
        return

    if not isinstance(doc, dict):
        _err(errors, path, "top level must be an object")
        return

    if doc.get("schema_version") != SCHEMA_VERSION:
        _err(errors, path,
             f"schema_version must be {SCHEMA_VERSION}, "
             f"got {doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        _err(errors, path, "missing or empty 'bench' name")
    else:
        expected = f"BENCH_{doc['bench']}.json"
        if os.path.basename(path) != expected:
            _err(errors, path, f"file name should be {expected}")

    # Optional: the par:: pool's lane count at report time. Older reports
    # predate the field; when present it must be a positive integer.
    if "threads" in doc:
        threads = doc["threads"]
        if not isinstance(threads, int) or isinstance(threads, bool) \
                or threads < 1:
            _err(errors, path,
                 f"'threads' must be a positive integer, got {threads!r}")

    workload = doc.get("workload")
    if not isinstance(workload, dict):
        _err(errors, path, "missing 'workload' object")
    else:
        for key in ("bench_scale", "dataset_scale"):
            if not isinstance(workload.get(key), (int, float)):
                _err(errors, path, f"workload.{key} must be a number")

    if not isinstance(doc.get("wall_seconds"), (int, float)):
        _err(errors, path, "wall_seconds must be a number")
    elif doc["wall_seconds"] < 0:
        _err(errors, path, "wall_seconds must be non-negative")

    results = doc.get("results")
    if not isinstance(results, list):
        _err(errors, path, "'results' must be an array")
        results = []
    seen_cells = set()
    for i, r in enumerate(results):
        if isinstance(r, dict) and isinstance(r.get("model"), str) \
                and isinstance(r.get("dataset"), str):
            cell = (r["model"], r["dataset"])
            if cell in seen_cells:
                _err(errors, path,
                     f"results[{i}] duplicates cell "
                     f"(model={cell[0]!r}, dataset={cell[1]!r})")
            seen_cells.add(cell)
        if not isinstance(r, dict):
            _err(errors, path, f"results[{i}] must be an object")
            continue
        for key, want in RESULT_KEYS.items():
            if key not in r:
                _err(errors, path, f"results[{i}] missing key {key!r}")
            elif not isinstance(r[key], want):
                _err(errors, path,
                     f"results[{i}].{key} has wrong type "
                     f"({type(r[key]).__name__})")
        status = r.get("status")
        if isinstance(status, str) and status not in ("ok", "failed"):
            _err(errors, path,
                 f"results[{i}].status must be 'ok' or 'failed', "
                 f"got {status!r}")
        if status == "failed":
            # A failed cell carries an error string and may have empty
            # hit/mrr maps; an ok cell must actually report metrics.
            if not isinstance(r.get("error"), str) or not r.get("error"):
                _err(errors, path,
                     f"results[{i}] is failed but has no 'error' string")
        elif status == "ok":
            if "error" in r:
                _err(errors, path,
                     f"results[{i}] is ok but carries an 'error'")
            for cutoffs in ("hit", "mrr"):
                if isinstance(r.get(cutoffs), dict) and not r[cutoffs]:
                    _err(errors, path,
                         f"results[{i}].{cutoffs} is empty on an ok cell")
        for cutoffs in ("hit", "mrr"):
            if isinstance(r.get(cutoffs), dict):
                _check_number_map(errors, path, r[cutoffs],
                                  f"results[{i}].{cutoffs}")
                for k in r[cutoffs]:
                    if not k.isdigit():
                        _err(errors, path,
                             f"results[{i}].{cutoffs} cutoff {k!r} "
                             "is not an integer")

    _check_number_map(errors, path, doc.get("scalars", {}), "scalars")
    _check_serve_scalars(errors, path, doc)

    _check_profile(errors, path, doc.get("profile"))

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        _err(errors, path, "missing 'metrics' snapshot object")
    else:
        for section in ("counters", "gauges", "histograms"):
            if section not in metrics:
                _err(errors, path, f"metrics.{section} missing")
        _check_number_map(errors, path, metrics.get("counters", {}),
                          "metrics.counters")
        _check_number_map(errors, path, metrics.get("gauges", {}),
                          "metrics.gauges")
        hists = metrics.get("histograms", {})
        if not isinstance(hists, dict):
            _err(errors, path, "metrics.histograms must be an object")
            hists = {}
        for name, h in hists.items():
            if not isinstance(h, dict):
                _err(errors, path, f"histogram {name!r} must be an object")
                continue
            bounds = h.get("bounds")
            counts = h.get("counts")
            if not isinstance(bounds, list) or not isinstance(counts, list):
                _err(errors, path,
                     f"histogram {name!r} needs 'bounds' and 'counts' arrays")
                continue
            if len(counts) != len(bounds) + 1:
                _err(errors, path,
                     f"histogram {name!r}: len(counts)={len(counts)} != "
                     f"len(bounds)+1={len(bounds) + 1}")
            if isinstance(h.get("count"), int) and sum(counts) != h["count"]:
                _err(errors, path,
                     f"histogram {name!r}: bucket counts sum to "
                     f"{sum(counts)}, 'count' says {h['count']}")

    # A report with neither results nor scalars carries no data at all;
    # flag it (bench_micro_substrate still has its metrics snapshot, and
    # google-benchmark owns its timing numbers, so metrics-only is fine
    # when results/scalars are both present-but-empty only for that bench).
    if not results and not doc.get("scalars") and not doc.get("metrics"):
        _err(errors, path, "report carries no results, scalars, or metrics")

    return doc


def check_files(paths, errors):
    """Validate each file and reject a bench name reused across files.

    Two reports claiming the same bench name in one invocation means one of
    them would silently shadow the other in any downstream aggregation
    (profile_diff.py, bench_history.py key on the name).
    """
    seen_names = {}
    for path in paths:
        doc = check_report(path, errors)
        name = doc.get("bench") if isinstance(doc, dict) else None
        if isinstance(name, str) and name:
            if name in seen_names:
                _err(errors, path,
                     f"duplicate bench name {name!r} "
                     f"(already used by {seen_names[name]})")
            else:
                seen_names[name] = path


def run_and_collect(argv):
    """Run a bench binary in a fresh temp dir; return produced report paths."""
    binary = os.path.abspath(argv[0])
    with tempfile.TemporaryDirectory(prefix="embsr_bench_json_") as tmp:
        env = dict(os.environ, EMBSR_BENCH_JSON_DIR=tmp)
        proc = subprocess.run([binary] + argv[1:], env=env, cwd=tmp,
                              stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"{binary}: exited with {proc.returncode}", file=sys.stderr)
            return 1
        reports = sorted(glob.glob(os.path.join(tmp, "BENCH_*.json")))
        if not reports:
            print(f"{binary}: produced no BENCH_*.json in {tmp}",
                  file=sys.stderr)
            return 1
        errors = []
        check_files(reports, errors)
        for e in errors:
            print(e, file=sys.stderr)
        if not errors:
            for path in reports:
                print(f"ok: {os.path.basename(path)}")
        return 1 if errors else 0


# ---- Self-test ---------------------------------------------------------------


def _valid_profile():
    """A profile block as ProfileJson() emits with EMBSR_PROF=1."""
    return {
        "enabled": True,
        "profiled_seconds": 1.5,
        "steps": 10,
        "step_ms": 1200.0,
        "attributed_forward_ms": 700.0,
        "attributed_backward_ms": 450.0,
        "top_ops": [{
            "op": "MatMul",
            "calls": 100,
            "forward_ms": 500.0,
            "backward_calls": 100,
            "backward_ms": 300.0,
            "flops": 1.2e9,
            "bytes_read": 4.0e8,
            "bytes_written": 1.0e8,
            "alloc_bytes": 1.0e8,
        }],
        "components": [{
            "component": "gru",
            "calls": 100,
            "forward_ms": 500.0,
            "backward_calls": 100,
            "backward_ms": 300.0,
            "flops": 1.2e9,
            "bytes_read": 4.0e8,
            "bytes_written": 1.0e8,
            "alloc_bytes": 1.0e8,
        }],
        "memory": {
            "live_bytes": 1024,
            "peak_bytes": 4096,
            "alloc_count": 12,
            "free_count": 10,
            "alloc_bytes_total": 8192,
            "timeline_events": 0,
            "timeline_dropped": 0,
        },
        "lanes": [{"lane": 0, "busy_ms": 900.0, "idle_ms": 600.0,
                   "chunks": 64}],
        "pool": {"chunk_ms_p50": 0.1, "chunk_ms_p99": 0.4,
                 "chunk_imbalance_pct_p50": 100.0,
                 "chunk_imbalance_pct_p99": 120.0},
        "roofline": {"flops_total": 1.2e9, "bytes_total": 5.0e8,
                     "intensity_flops_per_byte": 2.4,
                     "achieved_gflops": 1.04,
                     "achieved_gbytes_per_sec": 0.43},
    }


def _valid_report():
    """A minimal report that must validate cleanly."""
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "self_test",
        "threads": 4,
        "workload": {"bench_scale": 1.0, "dataset_scale": 1.0},
        "wall_seconds": 0.5,
        "results": [{
            "model": "S-POP",
            "dataset": "synth",
            "status": "ok",
            "fit_seconds": 0.1,
            "eval_seconds": 0.1,
            "hit": {"20": 0.5},
            "mrr": {"20": 0.25},
        }],
        "scalars": {},
        "profile": _valid_profile(),
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }


def _check_doc(doc, name):
    """Validates `doc` written to a correctly-named temp file."""
    errors = []
    with tempfile.TemporaryDirectory(prefix="embsr_bench_selftest_") as tmp:
        path = os.path.join(tmp, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        check_report(path, errors)
    return errors


def self_test():
    failures = []

    def expect_clean(doc, label):
        errors = _check_doc(doc, doc.get("bench", "self_test"))
        if errors:
            failures.append(f"{label}: unexpectedly rejected: {errors}")

    def expect_rejected(doc, label, needle):
        errors = _check_doc(doc, doc.get("bench", "self_test"))
        if not any(needle in e for e in errors):
            failures.append(
                f"{label}: expected an error containing {needle!r}, "
                f"got {errors}")

    expect_clean(_valid_report(), "valid report")

    # 'threads' is optional, but when present it must be a positive integer
    # (the par:: pool's lane count can never be 0, negative, fractional,
    # boolean, or a spelled-out word).
    absent = _valid_report()
    del absent["threads"]
    expect_clean(absent, "threads absent")
    for bad in ("four", 0, -1, True, 1.5, None):
        doc = _valid_report()
        doc["threads"] = bad
        expect_rejected(doc, f"threads={bad!r}",
                        "'threads' must be a positive integer")

    # Core schema rules the CI gate leans on.
    doc = _valid_report()
    doc["schema_version"] = SCHEMA_VERSION - 1
    expect_rejected(doc, "old schema_version", "schema_version must be")
    doc = _valid_report()
    doc["results"][0]["status"] = "failed"
    expect_rejected(doc, "failed without error", "has no 'error' string")
    doc = _valid_report()
    doc["results"][0]["hit"] = {}
    expect_rejected(doc, "empty hit map on ok cell", "is empty on an ok cell")

    # The schema-v3 'profile' block: mandatory, shape-checked field by field.
    doc = _valid_report()
    del doc["profile"]
    expect_rejected(doc, "profile absent", "missing 'profile' object")
    doc = _valid_report()
    doc["profile"]["enabled"] = "yes"
    expect_rejected(doc, "profile.enabled non-bool",
                    "profile.enabled must be a boolean")
    doc = _valid_report()
    doc["profile"]["attributed_forward_ms"] = -1.0
    expect_rejected(doc, "negative attributed ms",
                    "profile.attributed_forward_ms must be non-negative")
    doc = _valid_report()
    doc["profile"]["top_ops"][0]["flops"] = "many"
    expect_rejected(doc, "non-numeric op flops",
                    "profile.top_ops[0].flops must be a number")
    doc = _valid_report()
    del doc["profile"]["top_ops"][0]["op"]
    expect_rejected(doc, "op row without name",
                    "missing non-empty 'op' string")
    doc = _valid_report()
    del doc["profile"]["memory"]["peak_bytes"]
    expect_rejected(doc, "memory without peak",
                    "profile.memory.peak_bytes must be a number")
    doc = _valid_report()
    doc["profile"]["lanes"] = {"0": {}}
    expect_rejected(doc, "lanes non-array", "profile.lanes must be an array")
    doc = _valid_report()
    del doc["profile"]["roofline"]
    expect_rejected(doc, "roofline absent",
                    "profile.roofline must be an object")
    doc = _valid_report()
    doc["profile"]["top_ops"] = []
    expect_rejected(doc, "enabled profile with empty top_ops",
                    "top_ops is empty")
    # ...but a disabled profile with empty tables is exactly what every
    # bench emits when EMBSR_PROF is unset, so that must stay clean.
    doc = _valid_report()
    doc["profile"]["enabled"] = False
    doc["profile"]["steps"] = 0
    doc["profile"]["top_ops"] = []
    doc["profile"]["components"] = []
    doc["profile"]["lanes"] = []
    expect_clean(doc, "disabled profile with empty tables")

    # Serve sidecar rules: a serve* bench must carry the headline scalars,
    # rates must be fractions, and the latency percentiles must be ordered.
    def _serve_report():
        doc = _valid_report()
        doc["bench"] = "serve_chaos"
        doc["results"] = []
        doc["scalars"] = {
            "latency_p50_ms": 5.0,
            "latency_p99_ms": 40.0,
            "qps": 800.0,
            "shed_rate": 0.1,
            "degraded_fraction": 0.05,
        }
        return doc

    expect_clean(_serve_report(), "valid serve report")
    doc = _serve_report()
    del doc["scalars"]["shed_rate"]
    expect_rejected(doc, "serve report without shed_rate",
                    "serve bench missing scalar 'shed_rate'")
    doc = _serve_report()
    doc["scalars"]["degraded_fraction"] = 1.5
    expect_rejected(doc, "degraded_fraction out of range",
                    "must be a fraction in [0, 1]")
    doc = _serve_report()
    doc["scalars"]["shed_rate"] = -0.1
    expect_rejected(doc, "negative shed_rate",
                    "must be a fraction in [0, 1]")
    doc = _serve_report()
    doc["scalars"]["qps"] = -1.0
    expect_rejected(doc, "negative qps", "scalars.qps must be non-negative")
    doc = _serve_report()
    doc["scalars"]["latency_p50_ms"] = 50.0
    doc["scalars"]["latency_p99_ms"] = 5.0
    expect_rejected(doc, "inverted latency percentiles",
                    "exceeds latency_p99_ms")
    # A non-serve bench that happens to emit one of the keys still gets the
    # range check, but not the completeness requirement.
    doc = _valid_report()
    doc["scalars"] = {"shed_rate": 2.0}
    expect_rejected(doc, "non-serve bench with bad shed_rate",
                    "must be a fraction in [0, 1]")
    doc = _valid_report()
    doc["scalars"] = {"qps": 100.0}
    expect_clean(doc, "non-serve bench with only qps")

    # Duplicate detection: a (model, dataset) cell reported twice in one
    # file, and a JSON key written twice in one object.
    doc = _valid_report()
    doc["results"].append(dict(doc["results"][0]))
    expect_rejected(doc, "duplicate result cell", "duplicates cell")
    with tempfile.TemporaryDirectory(prefix="embsr_bench_selftest_") as tmp:
        dup_path = os.path.join(tmp, "BENCH_self_test.json")
        text = json.dumps(_valid_report())
        # Splice a second 'scalars' key into the top-level object.
        text = text.replace('"scalars": {}',
                            '"scalars": {}, "scalars": {"x": 1}', 1)
        with open(dup_path, "w", encoding="utf-8") as f:
            f.write(text)
        errors = []
        check_report(dup_path, errors)
        if not any("duplicate key 'scalars'" in e for e in errors):
            failures.append(
                f"duplicate JSON key: expected rejection, got {errors}")

    # Duplicate bench names across files in one invocation.
    with tempfile.TemporaryDirectory(prefix="embsr_bench_selftest_") as tmp:
        os.makedirs(os.path.join(tmp, "a"))
        os.makedirs(os.path.join(tmp, "b"))
        paths = []
        for sub in ("a", "b"):
            p = os.path.join(tmp, sub, "BENCH_self_test.json")
            with open(p, "w", encoding="utf-8") as f:
                json.dump(_valid_report(), f)
            paths.append(p)
        errors = []
        check_files(paths, errors)
        if not any("duplicate bench name 'self_test'" in e for e in errors):
            failures.append(
                f"duplicate bench name: expected rejection, got {errors}")
        errors = []
        check_files(paths[:1], errors)
        if errors:
            failures.append(
                f"single file unexpectedly rejected: {errors}")

    for msg in failures:
        print(f"self-test: {msg}", file=sys.stderr)
    print(f"self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    if argv[0] == "--self-test":
        return self_test()
    if argv[0] == "--run":
        if len(argv) < 2:
            print("--run needs a binary path", file=sys.stderr)
            return 2
        return run_and_collect(argv[1:])
    errors = []
    check_files(argv, errors)
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        for path in argv:
            print(f"ok: {path}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
