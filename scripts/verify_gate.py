#!/usr/bin/env python3
"""Static analysis gate, run as the `verify_gate` ctest.

Aggregates the pure-script checks that need no build products:
  1. scripts/lint.py --self-test   (the lint's own rules still fire)
  2. scripts/lint.py               (the tree is clean)
  3. scripts/check_bench_json.py --self-test
                                   (the bench JSON validator still rejects
                                   seeded schema-v3 violations, including
                                   bad `profile` blocks and duplicates)
  4. scripts/profile_diff.py --self-test
                                   (the profile differ still flags an
                                   injected 2x regression)
  5. scripts/bench_history.py --self-test
                                   (the trajectory tracker still flags a
                                   2x wall-time slowdown)
  6. scripts/check_bench_json.py   on every BENCH_*.json checked into the
     repo (benchmark reports committed as baselines). Zero such files is
     fine — the bench JSON contract is then exercised by the
     bench_json_schema test instead, which runs a real bench binary.

With --graph-audit BIN (CMake passes the built graph_audit_test), also runs
the autograd-graph auditor over the whole model zoo as a final stage, so
the gate covers graph wiring as well as source hygiene.

With --graph-plan BIN (CMake passes the built graph_plan_test), also runs
the static shape/liveness analyzer and arena planner over the whole model
zoo — every graph gets a verified non-overlapping arena plan whose planned
footprint brackets the prof-measured peak — via check_bench_json.py --run,
so the BENCH_graph_plan.json sidecar it writes is schema-validated in the
same stage.

With EMBSR_REQUIRE_TIDY=1 in the environment, clang-tidy becomes a *hard*
stage: the binary must exist and .clang-tidy must parse (clang-tidy
--verify-config). Without the variable the stage is skipped with a notice,
matching the gcc-only default container.

With --serve-bench BIN (CMake passes the built bench_serve_chaos), also
runs the serving chaos driver at tiny scale under an EMBSR_FAILPOINTS spec
(injected scorer/store failures and forced sheds on top of the bench's own
fault phases) and validates the BENCH_serve_chaos.json sidecar it writes —
the gate's proof that the serving core survives chaos end to end.

With --batch-equiv BIN (CMake passes the built batch_equiv_test), also
runs the batched-execution equivalence suite — EMBSR_BATCH_SIZE=1 bitwise
vs. the legacy per-session path, batch-{4,16} forward memcmp + tolerance
training, ragged-edge masks, batched tape audits across the zoo — as a
gate stage. Every test in the suite pins EMBSR_BATCH_SIZE itself, so the
stage is meaningful under any ambient environment.

With --arena BIN (CMake passes the built bench_arena), also runs the
arena executor across the neural zoo at tiny scale — heap baseline vs.
placed replay at batch 1 and 16 — and validates the BENCH_arena.json
sidecar it writes, so every gate run proves the plan-executing arena
still places the whole zoo with its live peak inside the planned
footprint. The arena test suite (plan cache, bitwise equivalence,
lifetime-conformance sentinel) runs as its own ctest; this stage covers
the footprint trajectory artifact.

Exits non-zero on the first failing stage. Stdlib only.
"""

import argparse
import os
import shutil
import subprocess
import sys


def run(argv, what, extra_env=None):
    print(f"verify_gate: {what}: {' '.join(argv)}", flush=True)
    env = None
    if extra_env:
        env = dict(os.environ)
        env.update(extra_env)
    proc = subprocess.run(argv, env=env)
    if proc.returncode != 0:
        print(f"verify_gate: FAILED at {what}")
        sys.exit(proc.returncode)


# The chaos spec the serve-bench stage runs under: scorer failures at a
# rate that trips the circuit breaker during bursts, transient store
# failures that exercise the retry path, occasional forced sheds, and an
# injected scorer stall — on top of the fault phases the bench itself
# scripts. Bounded (xN) so the run terminates in a sane state.
SERVE_CHAOS_ENV = {
    "EMBSR_BENCH_SCALE": "0.05",
    "EMBSR_FAILPOINTS": ("serve.score=0.2x100,serve.store_read=0.1x50,"
                         "serve.queue_full=0.05x20"),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--graph-audit", metavar="BIN", default=None,
                        help="path to the built graph_audit_test binary; "
                             "when given, run it as the final gate stage")
    parser.add_argument("--graph-plan", metavar="BIN", default=None,
                        help="path to the built graph_plan_test binary; "
                             "when given, plan + statically verify every "
                             "zoo model's graph and validate the "
                             "BENCH_graph_plan.json it emits")
    parser.add_argument("--serve-bench", metavar="BIN", default=None,
                        help="path to the built bench_serve_chaos binary; "
                             "when given, run it at tiny scale under an "
                             "EMBSR_FAILPOINTS chaos spec and validate the "
                             "BENCH_serve_chaos.json it emits")
    parser.add_argument("--batch-equiv", metavar="BIN", default=None,
                        help="path to the built batch_equiv_test binary; "
                             "when given, run the batched-execution "
                             "equivalence suite as a gate stage")
    parser.add_argument("--arena", metavar="BIN", default=None,
                        help="path to the built bench_arena binary; when "
                             "given, run the arena executor across the "
                             "neural zoo at tiny scale and validate the "
                             "BENCH_arena.json it emits")
    args = parser.parse_args()
    root = os.path.abspath(args.repo_root)
    scripts = os.path.join(root, "scripts")
    py = sys.executable

    run([py, os.path.join(scripts, "lint.py"), "--self-test"],
        "lint self-test")
    run([py, os.path.join(scripts, "lint.py"), "--repo-root", root], "lint")
    run([py, os.path.join(scripts, "check_bench_json.py"), "--self-test"],
        "bench JSON validator self-test")
    run([py, os.path.join(scripts, "profile_diff.py"), "--self-test"],
        "profile differ self-test")
    run([py, os.path.join(scripts, "bench_history.py"), "--self-test"],
        "bench trajectory self-test")

    bench_jsons = []
    for dirpath, dirnames, names in os.walk(root):
        # Checked-in reports only: generated build trees are not the gate's
        # business (and contain stale bench output).
        dirnames[:] = [d for d in dirnames
                       if not d.startswith(("build", ".git"))]
        bench_jsons.extend(
            os.path.join(dirpath, n) for n in names
            if n.startswith("BENCH_") and n.endswith(".json"))
    if bench_jsons:
        run([py, os.path.join(scripts, "check_bench_json.py")]
            + sorted(bench_jsons), "bench JSON schema")
    else:
        print("verify_gate: no checked-in BENCH_*.json (ok)")

    # clang-tidy is best-effort on the gcc-only default container, but a
    # toolchain that *has* it can promote the check to a hard failure.
    if os.environ.get("EMBSR_REQUIRE_TIDY") == "1":
        tidy = shutil.which("clang-tidy")
        if tidy is None:
            print("verify_gate: FAILED at clang-tidy: EMBSR_REQUIRE_TIDY=1 "
                  "but no clang-tidy binary on PATH")
            sys.exit(1)
        run([tidy, "--verify-config",
             f"--config-file={os.path.join(root, '.clang-tidy')}"],
            "clang-tidy config (required)")
    else:
        print("verify_gate: clang-tidy not required "
              "(set EMBSR_REQUIRE_TIDY=1 to make it a hard stage)")

    if args.graph_audit:
        run([args.graph_audit], "graph audit (model zoo)")

    if args.graph_plan:
        run([py, os.path.join(scripts, "check_bench_json.py"),
             "--run", args.graph_plan],
            "graph plan (zoo planned + statically verified, JSON validated)")

    if args.serve_bench:
        run([py, os.path.join(scripts, "check_bench_json.py"),
             "--run", args.serve_bench],
            "serve chaos bench (faults injected, JSON validated)",
            extra_env=SERVE_CHAOS_ENV)

    if args.batch_equiv:
        run([args.batch_equiv],
            "batch equivalence (batched vs legacy execution)")

    if args.arena:
        run([py, os.path.join(scripts, "check_bench_json.py"),
             "--run", args.arena],
            "arena executor (zoo placed, footprint in plan, JSON validated)",
            extra_env={"EMBSR_BENCH_SCALE": "0.05"})

    print("verify_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
