#!/usr/bin/env bash
# Sanitizer matrix runner: builds the test suite under one or more sanitizer
# configs in dedicated build directories and runs ctest for each, teeing
# per-config logs. A sanitizer report aborts the offending test
# (-fno-sanitize-recover / halt_on_error), so a green run means no detected
# issue on the paths the tests exercise.
#
# Usage: scripts/run_sanitized_tests.sh [CONFIG ...] [-- ctest args...]
#   CONFIG: address | thread | plain | contracts
#           (default: address thread plain contracts)
#   e.g. scripts/run_sanitized_tests.sh thread -- -R obs_race
#
# The `contracts` config builds with -DEMBSR_CHECK_CONTRACTS=ON (no
# sanitizer): every tensor kernel then verifies its declared per-chunk
# access sets against the DESIGN.md §11 partition contract before
# dispatching (src/par/access_check.h). Unlike TSan, the check runs on
# declarations, so it is deterministic at every thread count — the
# EMBSR_THREADS=4 leg exercises the same contracts under a real pool.
#
# Each config runs six ctest legs: the full suite, the concurrency-
# sensitive suites re-run under a forced EMBSR_THREADS=4 pool, the
# prof/par/autograd suites re-run with EMBSR_PROF=1 EMBSR_THREADS=4 so the
# embsr::prof attribution counters race under a real pool (and under TSan
# in the `thread` config), the ServeChaos smoke suite re-run with
# EMBSR_FAILPOINTS armed so the serving core's degraded/retry paths are
# exercised under each sanitizer, and the BatchEquiv suite re-run with
# EMBSR_BATCH_SIZE=16 x EMBSR_THREADS=4 so the batched trainer/evaluator
# paths race under a real pool, and the Arena* + BatchEquiv suites re-run
# with EMBSR_ARENA=1 x EMBSR_THREADS=4 so the plan-executing arena's
# record/place/fallback paths (and the sentinel's poison/sweep machinery)
# run under each sanitizer — including the lifetime gate itself under ASan,
# where dead intervals are hardware-poisoned.
#
# Build dirs: build-<config> (override root with EMBSR_SAN_BUILD_DIR).
# Logs: <build dir>/ctest-<config>.log.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${EMBSR_SAN_BUILD_DIR:-$repo_root}"
jobs="$(nproc 2>/dev/null || echo 4)"

configs=()
ctest_args=()
parsing_configs=1
for arg in "$@"; do
  if [[ "$arg" == "--" ]]; then
    parsing_configs=0
  elif [[ $parsing_configs == 1 ]]; then
    case "$arg" in
      address|thread|plain|contracts) configs+=("$arg") ;;
      *) echo "unknown config '$arg' (want address|thread|plain|contracts)" >&2
         exit 2 ;;
    esac
  else
    ctest_args+=("$arg")
  fi
done
if [[ ${#configs[@]} -eq 0 ]]; then
  configs=(address thread plain contracts)
fi

# halt_on_error pairs with -fno-sanitize-recover: first report kills the
# test. detect_leaks stays on by default where LeakSanitizer is available.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

failed=()
for config in "${configs[@]}"; do
  build_dir="$build_root/build-$config"
  contracts=OFF
  case "$config" in
    address)   sanitize=address ;;
    thread)    sanitize=thread ;;
    plain)     sanitize=off ;;
    contracts) sanitize=off; contracts=ON ;;
  esac
  echo "=== [$config] configuring $build_dir" \
       "(EMBSR_SANITIZE=$sanitize EMBSR_CHECK_CONTRACTS=$contracts)"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DEMBSR_SANITIZE="$sanitize" \
    -DEMBSR_CHECK_CONTRACTS="$contracts"
  cmake --build "$build_dir" -j "$jobs"

  log="$build_dir/ctest-$config.log"
  echo "=== [$config] ctest (log: $log)"
  if (cd "$build_dir" && ctest --output-on-failure \
        ${ctest_args[@]+"${ctest_args[@]}"} 2>&1 | tee "$log"); then
    echo "=== [$config] PASS"
  else
    echo "=== [$config] FAIL"
    failed+=("$config")
  fi

  # Second leg: re-run the concurrency-sensitive tests with a forced
  # 4-lane par:: pool so the parallel kernel/evaluator paths are exercised
  # under each sanitizer even on boxes where hardware_concurrency is 1
  # (where the default pool would be serial and TSan would see no threads).
  par_log="$build_dir/ctest-$config-threads4.log"
  echo "=== [$config] ctest EMBSR_THREADS=4 (log: $par_log)"
  # ctest registers gtest-discovered names (suite.case), so the filter
  # matches the suites from par_test, kernel_equiv_test, determinism_test,
  # obs_race_test, access_sentinel_test, graph_audit_test and
  # graph_plan_test (whose planner brackets its own prof session around
  # parallel-kernel forward/backward passes).
  if (cd "$build_dir" && EMBSR_THREADS=4 ctest --output-on-failure \
        -R '^(ParFor|ThreadPool|KernelEquivTest|DeterminismTest|ObsRaceTest|AccessSentinel(DeathTest)?|GraphAudit|GraphPlan)\.' \
        2>&1 | tee "$par_log"); then
    echo "=== [$config threads=4] PASS"
  else
    echo "=== [$config threads=4] FAIL"
    failed+=("$config-threads4")
  fi

  # Third leg: the embsr::prof attribution counters under live profiling.
  # EMBSR_PROF=1 arms the collector (shared shards, mem tracker atomics,
  # pool lane stats) while the 4-lane pool runs the prof/par/autograd
  # suites — under the thread config this puts the profiler's concurrent
  # record paths in front of TSan, which is the point of the leg.
  prof_log="$build_dir/ctest-$config-prof.log"
  echo "=== [$config] ctest EMBSR_PROF=1 EMBSR_THREADS=4 (log: $prof_log)"
  if (cd "$build_dir" && EMBSR_PROF=1 EMBSR_THREADS=4 ctest \
        --output-on-failure \
        -R '^(Prof|CostModel|MemTracker|ParFor|ThreadPool|Autograd|Gradcheck)' \
        2>&1 | tee "$prof_log"); then
    echo "=== [$config prof] PASS"
  else
    echo "=== [$config prof] FAIL"
    failed+=("$config-prof")
  fi

  # Fourth leg: chaos. The serve smoke suite (invariant-only assertions,
  # merges rather than clears armed failpoints) runs with EMBSR_FAILPOINTS
  # injecting scorer/store failures, forced sheds and a scorer stall — the
  # sanitizers watch the serving core's degraded paths, which clean tests
  # never reach. Only ServeChaos.* runs here: the exact-behavior serve
  # tests arm their own failpoints and would be perturbed by the env spec.
  chaos_log="$build_dir/ctest-$config-chaos.log"
  chaos_spec='serve.score=0.3x200,serve.store_read=0.15x100,serve.queue_full=0.05x40'
  echo "=== [$config] ctest EMBSR_FAILPOINTS=$chaos_spec (log: $chaos_log)"
  if (cd "$build_dir" && EMBSR_FAILPOINTS="$chaos_spec" ctest \
        --output-on-failure \
        -R '^ServeChaos\.' \
        2>&1 | tee "$chaos_log"); then
    echo "=== [$config chaos] PASS"
  else
    echo "=== [$config chaos] FAIL"
    failed+=("$config-chaos")
  fi

  # Fifth leg: batched execution. The BatchEquiv suite re-runs with an
  # ambient EMBSR_BATCH_SIZE=16 and a forced 4-lane pool so the batched
  # collator/forward/backward paths (and the Evaluator's batch scheduling)
  # race under each sanitizer. The equivalence tests pin their own batch
  # size via ScopedBatchSize, so the ambient value only steers the code
  # paths that read the env default — notably Fit/Evaluate inside helpers
  # that deliberately leave it unset.
  batch_log="$build_dir/ctest-$config-batch.log"
  echo "=== [$config] ctest EMBSR_BATCH_SIZE=16 EMBSR_THREADS=4" \
       "(log: $batch_log)"
  if (cd "$build_dir" && EMBSR_BATCH_SIZE=16 EMBSR_THREADS=4 ctest \
        --output-on-failure \
        -R '^BatchEquiv\.' \
        2>&1 | tee "$batch_log"); then
    echo "=== [$config batch] PASS"
  else
    echo "=== [$config batch] FAIL"
    failed+=("$config-batch")
  fi

  # Sixth leg: the arena executor. The Arena* suites (plan cache, bitwise
  # equivalence, footprint, lifetime-conformance sentinel) plus BatchEquiv
  # re-run with an ambient EMBSR_ARENA=1 and a forced 4-lane pool, so the
  # record -> place -> fallback state machine, the per-touch lifetime gate
  # and the poison/sweep of dead intervals all run under each sanitizer.
  # The arena tests pin EMBSR_ARENA themselves via ScopedEnv, so the
  # ambient value steers only the paths that read the env default; under
  # the contracts config the gate's strict clock bounds are active.
  arena_log="$build_dir/ctest-$config-arena.log"
  echo "=== [$config] ctest EMBSR_ARENA=1 EMBSR_THREADS=4 (log: $arena_log)"
  if (cd "$build_dir" && EMBSR_ARENA=1 EMBSR_THREADS=4 ctest \
        --output-on-failure \
        -R '^(Arena|BatchEquiv)' \
        2>&1 | tee "$arena_log"); then
    echo "=== [$config arena] PASS"
  else
    echo "=== [$config arena] FAIL"
    failed+=("$config-arena")
  fi
done

if [[ ${#failed[@]} -gt 0 ]]; then
  echo "sanitizer matrix FAILED for: ${failed[*]}"
  exit 1
fi
echo "sanitizer matrix passed for: ${configs[*]}"
