#!/usr/bin/env bash
# Build the test suite with ASan+UBSan (EMBSR_SANITIZE=ON) in a dedicated
# build directory and run ctest. Any sanitizer report aborts the offending
# test (-fno-sanitize-recover=all), so a green run means no detected memory
# or UB issues on the paths the tests exercise.
#
# Usage: scripts/run_sanitized_tests.sh [ctest args...]
#   e.g. scripts/run_sanitized_tests.sh -R robust

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${EMBSR_SAN_BUILD_DIR:-$repo_root/build-asan}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEMBSR_SANITIZE=ON
cmake --build "$build_dir" -j "$jobs"

# halt_on_error pairs with -fno-sanitize-recover: first report kills the
# test. detect_leaks stays on by default where LeakSanitizer is available.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cd "$build_dir"
ctest --output-on-failure "$@"
