#!/usr/bin/env python3
"""Custom lint for the embsr tree: bans constructs the toolchain can't catch.

Rules (rule ids in parentheses):
  raw-new     `new` / `delete` outside smart pointers. The three leaked
              observability/failpoint singletons carry inline suppressions.
  rand        `rand()` / `srand()`: all randomness must flow through
              embsr::Rng so runs stay reproducible and resumable.
  getenv      `getenv` anywhere but src/util/env.cc: environment access is
              centralized so knobs are enumerable.
  env-prefix  environment knob names passed to GetEnv* must start with
              EMBSR_ (namespace hygiene for anything we read from the env).
  layer-dag   #include edges between src/ directories must follow the layer
              DAG (util at the bottom, verify at the top). An include that
              points up the DAG — e.g. util including nn — is an error.
  data-arith  pointer arithmetic on `.data()` outside the kernel layers
              (src/tensor, src/autograd). Byte-I/O code that needs it must
              justify with an inline suppression.
  todo-owner  TODO comments without an owner. `TODO(name): ...` survives;
              an ownerless TODO rots forever because nobody is on the hook
              for it.
  raw-chrono  direct std::chrono use outside src/obs, src/prof and
              src/util. All timing flows through WallTimer, obs spans or
              prof::NowNs, so the profiler sees every measurement and
              ad-hoc stopwatches can't drift from the instrumented paths.
  arena-bypass  direct heap Tensor construction inside src/arena. The
              arena executor must materialize node storage only through
              Tensor::FromArenaView (placed) or by leaving the recorded
              tensor alone (heap occurrences); a stray `Tensor t(...)` or
              factory call there is a buffer the planner never saw, which
              silently breaks the zero-steady-state-allocation guarantee.
              The fail-open spill path carries the only sanctioned
              suppressions.
  raw-resize  `.resize(` / `.Reshape(` outside src/tensor. Tensor reshape
              and buffer growth invalidate the static liveness intervals
              the arena planner (src/analyze) proves safe, and Reshape's
              copy-on-grow bug class is exactly what the PR-6 memory
              tracker caught; std::vector sizing in I/O or graph-building
              code must justify with an inline suppression so every site
              is audited.

Suppressions: append `// lint: allow(<rule-id>): <reason>` to the offending
line, or put it on the line directly above (it covers both). The reason is
mandatory — a bare allow() is itself an error.

Usage:
  lint.py [--repo-root PATH]   lint the tree (default: script's repo)
  lint.py --self-test          prove every rule still fires on a seeded
                               violation and stays quiet on clean code

Exit status: 0 clean, 1 violations (or self-test failure). Stdlib only.
"""

import argparse
import os
import re
import sys

# Directory-level layer DAG: src/<dir> may include headers only from itself
# and the listed layers. `robust/failpoint.h` is its own low layer
# ("failpoint") even though it lives in src/robust: it is the crash-injection
# primitive that nn/ and data/ are allowed to use, while the rest of robust/
# (checkpoint manager, degradation) sits above them.
LAYER_DEPS = {
    "util": set(),
    "obs": {"util"},
    "prof": {"obs", "util"},
    "par": {"obs", "prof", "util"},
    "tensor": {"par", "prof", "util"},
    "metrics": {"util"},
    "failpoint": {"util", "obs"},
    "graph": {"tensor", "util"},
    "autograd": {"tensor", "obs", "prof", "util"},
    "optim": {"autograd", "tensor", "obs", "util"},
    "nn": {"autograd", "tensor", "obs", "prof", "util", "failpoint"},
    "data": {"util", "failpoint"},
    "datagen": {"data", "obs", "util", "failpoint"},
    "robust": {"failpoint", "nn", "optim", "autograd", "tensor", "obs",
               "util"},
    "models": {"arena", "nn", "optim", "data", "graph", "metrics", "robust",
               "failpoint", "autograd", "tensor", "obs", "prof", "util"},
    "serve": {"models", "nn", "optim", "data", "graph", "metrics", "robust",
              "failpoint", "autograd", "tensor", "obs", "prof", "util"},
    "core": {"models", "nn", "optim", "data", "graph", "metrics", "robust",
             "failpoint", "autograd", "tensor", "obs", "util"},
    "train": {"core", "datagen", "models", "nn", "optim", "data", "graph",
              "metrics", "robust", "failpoint", "autograd", "tensor", "par",
              "obs", "prof", "util"},
    "verify": {"train", "core", "datagen", "models", "nn", "optim", "data",
               "graph", "metrics", "robust", "failpoint", "autograd",
               "tensor", "obs", "util"},
    "analyze": {"train", "core", "datagen", "models", "nn", "optim", "data",
                "graph", "metrics", "robust", "failpoint", "autograd",
                "tensor", "par", "obs", "prof", "util"},
    "arena": {"analyze", "autograd", "tensor", "obs", "util"},
}

SUPPRESS_RE = re.compile(r"//\s*lint:\s*allow\((?P<rule>[a-z-]+)\)(?P<reason>.*)")
INCLUDE_RE = re.compile(r'^\s*#include\s+"(?P<path>[a-z_]+/[^"]+)"')

# Matched against comment- and string-stripped lines.
RAW_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:]|(?<![\w.=])\bdelete\s")
RAND_RE = re.compile(r"(?<![\w.])s?rand\s*\(")
GETENV_RE = re.compile(r"(?<![\w.:])(?:std::)?getenv\s*\(")
ENV_CALL_RE = re.compile(r'GetEnv(?:Double|Int|String)\s*\(\s*"(?P<name>[^"]*)"')
DATA_ARITH_RE = re.compile(r"\.data\(\)\s*[+-]")
# Bare std::thread (the `(?!\s*::)` keeps std::thread::hardware_concurrency
# legal — querying the machine is fine, owning a thread is not).
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!\s*::)")
# Matched against the raw line: TODO lives in comments, which the other
# rules strip. Owner must follow immediately in parens: TODO(name).
TODO_OWNER_RE = re.compile(r"\bTODO\b(?!\([A-Za-z0-9_.@-]+\))")
RAW_CHRONO_RE = re.compile(r"\bstd::chrono\b")
# The only directories allowed to read the clock directly; everyone else
# measures through WallTimer / obs spans / prof::NowNs.
CHRONO_EXEMPT_DIRS = ("obs", "prof", "util")
RAW_RESIZE_RE = re.compile(r"\.(?:resize|Reshape)\s*\(")
# The only directory allowed to change a buffer's shape in place; see the
# raw-resize rule description.
RESIZE_EXEMPT_DIRS = ("tensor",)
# Heap Tensor materialization inside the arena executor: a local Tensor
# declaration, any Tensor:: factory other than the sanctioned FromArenaView,
# or a raw-new'd Tensor. Scoped to src/arena only.
ARENA_BYPASS_RE = re.compile(
    r"\bTensor\s+[A-Za-z_]"
    r"|\bTensor::(?!FromArenaView\b)[A-Za-z_]+\s*\("
    r"|\bnew\s+Tensor\b")


def strip_comments(line):
    """Removes // and single-line /* */ comments (coarse, line-local)."""
    line = re.sub(r"/\*.*?\*/", "", line)
    line = re.sub(r"//.*", "", line)
    return line


def strip_code_line(line):
    """Removes string literals, then comments."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return strip_comments(line)


def include_layer(include_path):
    """Maps an include path to its lint layer, or None if out of scope."""
    first = include_path.split("/", 1)[0]
    if include_path == "robust/failpoint.h":
        return "failpoint"
    return first if first in LAYER_DEPS else None


def file_layer(rel_path):
    parts = rel_path.split(os.sep)
    if len(parts) < 3 or parts[0] != "src":
        return None
    if parts[1] == "robust" and parts[2] == "failpoint.cc":
        return "failpoint"
    if parts[1] == "robust" and parts[2] == "failpoint.h":
        return "failpoint"
    return parts[1] if parts[1] in LAYER_DEPS else None


def lint_file(rel_path, text):
    """Returns a list of (rel_path, line_no, rule, message) violations."""
    violations = []
    layer = file_layer(rel_path)
    in_env_cc = rel_path == os.path.join("src", "util", "env.cc")
    chrono_exempt = any(
        rel_path.startswith(os.path.join("src", d) + os.sep)
        for d in CHRONO_EXEMPT_DIRS)
    resize_exempt = any(
        rel_path.startswith(os.path.join("src", d) + os.sep)
        for d in RESIZE_EXEMPT_DIRS)
    in_arena = rel_path.startswith(os.path.join("src", "arena") + os.sep)

    carried = None  # suppression declared on the previous line
    for i, raw in enumerate(text.splitlines(), start=1):
        suppressed = carried
        carried = None
        m = SUPPRESS_RE.search(raw)
        if m:
            reason = m.group("reason").lstrip(": ").strip()
            if not reason:
                violations.append(
                    (rel_path, i, "bare-allow",
                     "lint suppression without a justification"))
                continue
            suppressed = m.group("rule")
            carried = suppressed  # also covers the following line

        def check(rule, message, line_no=i):
            if suppressed != rule:
                violations.append((rel_path, line_no, rule, message))

        code = strip_code_line(raw)

        inc = INCLUDE_RE.match(raw)
        if inc and layer is not None:
            target = include_layer(inc.group("path"))
            if (target is not None and target != layer
                    and target not in LAYER_DEPS[layer]):
                check("layer-dag",
                      f"src/{layer} may not include {inc.group('path')} "
                      f"(layer '{target}' is not below '{layer}')")

        if RAW_NEW_RE.search(code):
            check("raw-new",
                  "raw new/delete; use std::make_unique/std::make_shared "
                  "or justify a leaked singleton")
        if RAW_THREAD_RE.search(code):
            check("raw-thread",
                  "raw std::thread; go through par::For / par::ThreadPool "
                  "so EMBSR_THREADS governs all parallelism (the pool "
                  "itself carries the one sanctioned suppression)")
        if RAND_RE.search(code):
            check("rand",
                  "rand()/srand(); use embsr::Rng so runs are reproducible")
        if GETENV_RE.search(code) and not in_env_cc:
            check("getenv",
                  "getenv outside src/util/env.cc; add a GetEnv* helper")
        # Knob names live inside string literals, so this rule scans the
        # comment-stripped (but string-preserving) line.
        for env in ENV_CALL_RE.finditer(strip_comments(raw)):
            if not env.group("name").startswith("EMBSR_"):
                check("env-prefix",
                      f"env knob '{env.group('name')}' must start with "
                      "EMBSR_")
        if (DATA_ARITH_RE.search(code) and layer is not None
                and layer not in ("tensor", "autograd")):
            check("data-arith",
                  ".data() pointer arithmetic outside the kernel layers; "
                  "index via at()/vec() or justify byte-level I/O")
        if RAW_CHRONO_RE.search(code) and not chrono_exempt:
            check("raw-chrono",
                  "direct std::chrono outside src/obs, src/prof and "
                  "src/util; time through WallTimer, obs spans or "
                  "prof::NowNs so the profiler sees every measurement")
        if in_arena and ARENA_BYPASS_RE.search(code):
            check("arena-bypass",
                  "direct heap Tensor construction in the arena executor; "
                  "materialize through Tensor::FromArenaView or justify a "
                  "fail-open spill with an inline suppression")
        if RAW_RESIZE_RE.search(code) and not resize_exempt:
            check("raw-resize",
                  ".resize()/.Reshape() outside src/tensor; in-place shape "
                  "changes break the planner's static liveness intervals — "
                  "construct at the final size, or justify container "
                  "sizing with an inline suppression")
        # TODOs live in comments, so this rule scans the raw line.
        if TODO_OWNER_RE.search(raw):
            check("todo-owner",
                  "TODO without an owner; write `TODO(name): ...` so "
                  "someone is on the hook for it")
    return violations


def iter_source_files(repo_root):
    for top in ("src", "bench", "examples"):
        for dirpath, _, names in os.walk(os.path.join(repo_root, top)):
            for name in sorted(names):
                if name.endswith((".cc", ".h")):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, repo_root)


def lint_tree(repo_root):
    violations = []
    for rel in iter_source_files(repo_root):
        with open(os.path.join(repo_root, rel), encoding="utf-8") as f:
            violations.extend(lint_file(rel, f.read()))
    return violations


# ---- Self-test ---------------------------------------------------------------

# Each entry: (rule id, file path the snippet pretends to live at, snippet
# that MUST fire, snippet that MUST stay clean).
SELF_TEST_CASES = [
    ("raw-new", "src/nn/x.cc",
     "int* p = new int[3];",
     "auto p = std::make_unique<int[]>(3);"),
    ("raw-new", "src/nn/x.cc",
     "delete ptr;",
     "Module(const Module&) = delete;"),
    ("rand", "src/models/x.cc",
     "int r = rand() % 6;",
     "Tensor t = Tensor::RandUniform({2, 2}, -1.0f, 1.0f, &rng);"),
    ("getenv", "src/train/x.cc",
     'const char* v = getenv("EMBSR_FOO");',
     'const std::string v = GetEnvString("EMBSR_FOO", "");'),
    ("env-prefix", "src/obs/x.cc",
     'GetEnvInt("TRACE_DEPTH", 3);',
     'GetEnvInt("EMBSR_TRACE_DEPTH", 3);'),
    ("layer-dag", "src/util/x.cc",
     '#include "nn/layers.h"',
     '#include "util/status.h"'),
    ("layer-dag", "src/tensor/x.cc",
     '#include "autograd/ops.h"',
     '#include "tensor/tensor.h"'),
    ("data-arith", "src/models/x.cc",
     "float* p = t.data() + off;",
     "float v = t.at(off);"),
    ("raw-thread", "src/train/x.cc",
     "std::thread t([] { Work(); });",
     "int n = static_cast<int>(std::thread::hardware_concurrency());"),
    ("raw-thread", "src/obs/x.cc",
     "std::vector<std::thread> workers;",
     "par::For(0, n, 1, fn);"),
    ("layer-dag", "src/util/x.cc",
     '#include "par/thread_pool.h"',
     '#include "util/env.h"'),
    ("bare-allow", "src/nn/x.cc",
     "int* p = new int;  // lint: allow(raw-new):",
     "static X* x = new X();  // lint: allow(raw-new): leaked singleton"),
    ("todo-owner", "src/nn/x.cc",
     "// TODO: wire this into the trainer",
     "// TODO(ana): wire this into the trainer"),
    ("todo-owner", "src/models/x.cc",
     "int k = 0;  // TODO tune this",
     "int k = 0;  // tuned on the JD validation split"),
    ("layer-dag", "src/analyze/x.cc",
     '#include "verify/gradcheck.h"',
     '#include "train/model_zoo.h"'),
    ("raw-chrono", "src/models/x.cc",
     "auto t0 = std::chrono::steady_clock::now();",
     "WallTimer timer;"),
    ("raw-chrono", "bench/x.cc",
     "std::this_thread::sleep_for(std::chrono::milliseconds(5));",
     "const double secs = timer.Seconds();"),
    ("layer-dag", "src/obs/x.cc",
     '#include "prof/op_profiler.h"',
     '#include "obs/metrics.h"'),
    ("raw-resize", "src/models/x.cc",
     "scores.resize(num_items);",
     "std::vector<float> scores(num_items, 0.0f);"),
    ("raw-resize", "src/autograd/x.cc",
     "Tensor g2 = g.Reshape({rows, cols});",
     "Tensor g2 = Transpose(g);"),
    ("raw-resize", "bench/x.cc",
     "sessions.resize(count);",
     "std::vector<Session> sessions(count);"),
    ("arena-bypass", "src/arena/x.cc",
     "Tensor scratch({rows, cols}, 0.0f);",
     "node->value = Tensor::FromArenaView(v, node->value.shape());"),
    ("arena-bypass", "src/arena/x.cc",
     "Tensor z = Tensor::Zeros({rows, cols});",
     "const Tensor& ref = node->value;"),
]

# The raw-chrono / raw-resize exemption lists, pinned separately because the
# table above can only express "fires on bad / quiet on good" at one path.
CHRONO_EXEMPT_SNIPPET = "auto t0 = std::chrono::steady_clock::now();\n"
RESIZE_EXEMPT_SNIPPET = "data_.resize(new_elems);\n"
# arena-bypass is scoped to src/arena: the same construction elsewhere is
# ordinary model code and must not fire.
ARENA_BYPASS_SNIPPET = "Tensor scratch({rows, cols}, 0.0f);\n"
ARENA_BYPASS_QUIET_DIRS = ("models", "nn", "autograd")


def self_test():
    failures = []
    for rule, path, bad, good in SELF_TEST_CASES:
        fired = [v[2] for v in lint_file(path, bad + "\n")]
        if rule not in fired:
            failures.append(f"rule '{rule}' did not fire on: {bad!r}")
        clean = [v for v in lint_file(path, good + "\n") if v[2] == rule]
        if clean:
            failures.append(f"rule '{rule}' false-positive on: {good!r}")
    exempt_paths = [os.path.join("src", d, "x.cc") for d in CHRONO_EXEMPT_DIRS]
    for path in exempt_paths:
        fired = [v for v in lint_file(path, CHRONO_EXEMPT_SNIPPET)
                 if v[2] == "raw-chrono"]
        if fired:
            failures.append(f"raw-chrono fired in exempt dir: {path}")
    resize_exempt_paths = [os.path.join("src", d, "x.cc")
                           for d in RESIZE_EXEMPT_DIRS]
    for path in resize_exempt_paths:
        fired = [v for v in lint_file(path, RESIZE_EXEMPT_SNIPPET)
                 if v[2] == "raw-resize"]
        if fired:
            failures.append(f"raw-resize fired in exempt dir: {path}")
    arena_quiet_paths = [os.path.join("src", d, "x.cc")
                         for d in ARENA_BYPASS_QUIET_DIRS]
    for path in arena_quiet_paths:
        fired = [v for v in lint_file(path, ARENA_BYPASS_SNIPPET)
                 if v[2] == "arena-bypass"]
        if fired:
            failures.append(f"arena-bypass fired outside src/arena: {path}")
    for msg in failures:
        print(f"self-test: {msg}")
    cases = (len(SELF_TEST_CASES) + len(exempt_paths)
             + len(resize_exempt_paths) + len(arena_quiet_paths))
    print(f"self-test: {cases} cases, {len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo-root",
                        default=os.path.dirname(
                            os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    violations = lint_tree(args.repo_root)
    for rel, line, rule, message in violations:
        print(f"{rel}:{line}: [{rule}] {message}")
    print(f"lint: {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
