#!/usr/bin/env python3
"""Track BENCH_*.json trajectories across commits in a JSONL history file.

Each `record` invocation appends one line to the history file summarizing a
set of schema-v3 bench reports at one commit: wall seconds, profiler step
time, peak bytes, and roofline totals per bench. `report` prints the
trajectory so a drifting bench is visible across the PR sequence, and
`check` compares the newest entry against the previous one with a
percentage threshold so CI can refuse a silent slowdown.

Usage:
  bench_history.py record --history FILE [--commit SHA] [--note TEXT]
                   REPORT.json [REPORT.json ...]
  bench_history.py report --history FILE [--bench NAME]
  bench_history.py check  --history FILE [--max-regress-pct N]
                   [--min-seconds S]
  bench_history.py --self-test

`--commit` defaults to `git rev-parse HEAD` of the working directory (or
"unknown" outside a checkout). `check` ignores benches faster than
--min-seconds (default 0.05): sub-50ms wall times are scheduler noise.

Besides wall time, `check` compares every `planned_peak_bytes*` scalar
(the arena planner's per-model footprint from BENCH_graph_plan.json),
every `arena_peak_bytes*` scalar and every `arena_live_over_planned*`
ratio (the executor's measured footprint from BENCH_arena.json) against
the previous entry with the same threshold: all three are deterministic,
so growth past the threshold is a real graph or placement change, not
noise — and unlike wall time they are not gated on --min-seconds.

Throughput scalars run the check in the inverse direction: for every
`sessions_per_sec*` scalar (BENCH_batch_throughput.json) a *drop* beyond
the threshold is the regression, since higher is better there.

Exit codes: 0 clean, 1 regression found (check), 2 usage/IO error.
Stdlib only.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time


def _git_head():
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _summarize(doc):
    """Reduce one BENCH report to the trajectory-relevant numbers."""
    profile = doc.get("profile", {})
    if not isinstance(profile, dict):
        profile = {}
    memory = profile.get("memory", {})
    roofline = profile.get("roofline", {})
    summary = {
        "wall_seconds": doc.get("wall_seconds"),
        "threads": doc.get("threads"),
        "bench_scale": doc.get("workload", {}).get("bench_scale"),
        "step_ms": profile.get("step_ms"),
        "peak_bytes": memory.get("peak_bytes")
        if isinstance(memory, dict) else None,
        "flops_total": roofline.get("flops_total")
        if isinstance(roofline, dict) else None,
    }
    scalars = doc.get("scalars")
    if isinstance(scalars, dict) and scalars:
        summary["scalars"] = scalars
    return summary


def load_history(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: bad history line: {e}")
    return entries


def cmd_record(opts):
    benches = {}
    for path in opts.reports:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_history: {path}: {e}", file=sys.stderr)
            return 2
        name = doc.get("bench") if isinstance(doc, dict) else None
        if not isinstance(name, str) or not name:
            print(f"bench_history: {path}: no 'bench' name", file=sys.stderr)
            return 2
        if name in benches:
            print(f"bench_history: duplicate bench {name!r} in one record",
                  file=sys.stderr)
            return 2
        benches[name] = _summarize(doc)
    entry = {
        "commit": opts.commit or _git_head(),
        "recorded_at_unix": int(time.time()),
        "benches": benches,
    }
    if opts.note:
        entry["note"] = opts.note
    os.makedirs(os.path.dirname(os.path.abspath(opts.history)), exist_ok=True)
    with open(opts.history, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"recorded {len(benches)} bench(es) at commit "
          f"{entry['commit'][:12]} -> {opts.history}")
    return 0


def cmd_report(opts):
    try:
        entries = load_history(opts.history)
    except ValueError as e:
        print(f"bench_history: {e}", file=sys.stderr)
        return 2
    if not entries:
        print(f"bench_history: no entries in {opts.history}")
        return 0
    names = sorted({n for e in entries for n in e.get("benches", {})})
    if opts.bench:
        if opts.bench not in names:
            print(f"bench_history: bench {opts.bench!r} not in history",
                  file=sys.stderr)
            return 2
        names = [opts.bench]
    for name in names:
        print(f"== {name}")
        print(f"{'commit':<14} {'wall_s':>10} {'step_ms':>10} "
              f"{'peak_MiB':>10}")
        for e in entries:
            s = e.get("benches", {}).get(name)
            if s is None:
                continue

            def fmt(v, spec):
                return format(v, spec) if isinstance(v, (int, float)) \
                    else format("-", ">10")

            peak = s.get("peak_bytes")
            peak_mib = peak / (1 << 20) if isinstance(peak, (int, float)) \
                else None
            print(f"{str(e.get('commit', '?'))[:12]:<14} "
                  f"{fmt(s.get('wall_seconds'), '>10.3f')} "
                  f"{fmt(s.get('step_ms'), '>10.2f')} "
                  f"{fmt(peak_mib, '>10.2f')}")
    return 0


def check_entries(entries, max_regress_pct, min_seconds):
    """Compare the newest entry's benches against the previous entry.

    Returns a list of regression strings; empty means clean. A bench that
    appears only in the newest entry has no baseline and is skipped.
    """
    if len(entries) < 2:
        return []
    prev, last = entries[-2], entries[-1]
    regressions = []
    for name, cur in sorted(last.get("benches", {}).items()):
        base = prev.get("benches", {}).get(name)
        if base is None:
            continue
        if base.get("bench_scale") != cur.get("bench_scale") \
                or base.get("threads") != cur.get("threads"):
            continue  # incomparable workloads
        b = base.get("wall_seconds")
        c = cur.get("wall_seconds")
        if isinstance(b, (int, float)) and isinstance(c, (int, float)) \
                and b >= min_seconds:
            pct = (c / b - 1.0) * 100.0
            if pct > max_regress_pct:
                regressions.append(
                    f"{name}: wall_seconds {b:.3f} -> {c:.3f} ({pct:+.1f}% > "
                    f"{max_regress_pct:.0f}%)")
        # Arena footprints — the planner's byte counts and the executor's
        # measured live peak / live-over-planned ratio — are deterministic:
        # no noise floor; any growth past the threshold is a real graph or
        # placement change.
        base_scalars = base.get("scalars") or {}
        cur_scalars = cur.get("scalars") or {}
        direct_keys = ("planned_peak_bytes", "arena_peak_bytes",
                       "arena_live_over_planned")
        for key in sorted(cur_scalars):
            if not key.startswith(direct_keys):
                continue
            sb, sc = base_scalars.get(key), cur_scalars[key]
            if not isinstance(sb, (int, float)) or sb <= 0 \
                    or not isinstance(sc, (int, float)):
                continue
            pct = (sc / sb - 1.0) * 100.0
            if pct > max_regress_pct:
                regressions.append(
                    f"{name}: {key} {sb:.0f} -> {sc:.0f} ({pct:+.1f}% > "
                    f"{max_regress_pct:.0f}%)")
        # Throughput scalars regress in the *inverse* direction: a drop in
        # sessions/sec beyond the threshold means the batched path slowed.
        for key in sorted(cur_scalars):
            if not key.startswith("sessions_per_sec"):
                continue
            sb, sc = base_scalars.get(key), cur_scalars[key]
            if not isinstance(sb, (int, float)) or sb <= 0 \
                    or not isinstance(sc, (int, float)):
                continue
            pct = (1.0 - sc / sb) * 100.0
            if pct > max_regress_pct:
                regressions.append(
                    f"{name}: {key} {sb:.1f} -> {sc:.1f} ({pct:.1f}% drop > "
                    f"{max_regress_pct:.0f}%)")
    return regressions


def cmd_check(opts):
    try:
        entries = load_history(opts.history)
    except ValueError as e:
        print(f"bench_history: {e}", file=sys.stderr)
        return 2
    regressions = check_entries(entries, opts.max_regress_pct,
                                opts.min_seconds)
    for r in regressions:
        print(f"REGRESSION: {r}", file=sys.stderr)
    if regressions:
        return 1
    print(f"ok: {len(entries)} history entries, newest vs previous within "
          f"{opts.max_regress_pct:.0f}%")
    return 0


def _parser():
    p = argparse.ArgumentParser(
        description="Track BENCH_*.json trajectories across commits.")
    p.add_argument("--self-test", action="store_true")
    sub = p.add_subparsers(dest="cmd")
    rec = sub.add_parser("record")
    rec.add_argument("--history", required=True)
    rec.add_argument("--commit", default=None)
    rec.add_argument("--note", default=None)
    rec.add_argument("reports", nargs="+")
    rep = sub.add_parser("report")
    rep.add_argument("--history", required=True)
    rep.add_argument("--bench", default=None)
    chk = sub.add_parser("check")
    chk.add_argument("--history", required=True)
    chk.add_argument("--max-regress-pct", type=float, default=50.0)
    chk.add_argument("--min-seconds", type=float, default=0.05)
    return p


# ---- Self-test ---------------------------------------------------------------


def _fake_report(name, wall, step_ms, peak):
    return {
        "schema_version": 3,
        "bench": name,
        "threads": 1,
        "workload": {"bench_scale": 1.0, "dataset_scale": 0.5},
        "wall_seconds": wall,
        "results": [],
        "scalars": {},
        "profile": {"enabled": True, "step_ms": step_ms,
                    "memory": {"peak_bytes": peak},
                    "roofline": {"flops_total": 1e9}},
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }


def self_test():
    failures = []
    parser = _parser()
    with tempfile.TemporaryDirectory(prefix="embsr_bench_history_") as tmp:
        history = os.path.join(tmp, "history.jsonl")

        def record(commit, wall):
            path = os.path.join(tmp, "BENCH_micro.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(_fake_report("micro", wall, wall * 1000.0,
                                       1 << 20), f)
            opts = parser.parse_args(
                ["record", "--history", history, "--commit", commit, path])
            return cmd_record(opts)

        if record("aaaa", 1.00) != 0:
            failures.append("record #1 failed")
        if record("bbbb", 1.05) != 0:
            failures.append("record #2 failed")

        opts = parser.parse_args(["check", "--history", history,
                                  "--max-regress-pct", "50"])
        if cmd_check(opts) != 0:
            failures.append("5% drift flagged at a 50% threshold")

        # The acceptance case: a 2x slowdown must fail the check.
        if record("cccc", 2.10) != 0:
            failures.append("record #3 failed")
        if cmd_check(opts) != 1:
            failures.append("2x slowdown not flagged")

        entries = load_history(history)
        if len(entries) != 3:
            failures.append(f"expected 3 history lines, got {len(entries)}")
        regs = check_entries(entries, 50.0, 0.05)
        if not any("micro" in r for r in regs):
            failures.append(f"check_entries missed the regression: {regs}")

        # Sub-min-seconds benches are noise, never regressions.
        fast = [
            {"commit": "x", "benches": {"tiny": {
                "wall_seconds": 0.001, "threads": 1, "bench_scale": 1.0}}},
            {"commit": "y", "benches": {"tiny": {
                "wall_seconds": 0.009, "threads": 1, "bench_scale": 1.0}}},
        ]
        if check_entries(fast, 50.0, 0.05):
            failures.append("sub-min-seconds bench flagged")

        # A planned-footprint jump is a regression even on a fast bench
        # (deterministic byte counts have no --min-seconds noise floor)...
        grown = [
            {"commit": "x", "benches": {"graph_plan": {
                "wall_seconds": 0.01, "threads": 1, "bench_scale": 1.0,
                "scalars": {"planned_peak_bytes/EMBSR": 1000.0}}}},
            {"commit": "y", "benches": {"graph_plan": {
                "wall_seconds": 0.01, "threads": 1, "bench_scale": 1.0,
                "scalars": {"planned_peak_bytes/EMBSR": 2100.0}}}},
        ]
        regs = check_entries(grown, 50.0, 0.05)
        if not any("planned_peak_bytes/EMBSR" in r for r in regs):
            failures.append(f"planned peak growth not flagged: {regs}")
        # ...while steady footprints stay quiet.
        grown[1]["benches"]["graph_plan"]["scalars"][
            "planned_peak_bytes/EMBSR"] = 1040.0
        if check_entries(grown, 50.0, 0.05):
            failures.append("steady planned peak flagged as regression")

        # The executor's measured arena footprint regresses like the
        # planner's: live-peak growth or a live-over-planned ratio jump
        # past the threshold fails the check...
        arena = [
            {"commit": "x", "benches": {"arena": {
                "wall_seconds": 0.01, "threads": 1, "bench_scale": 1.0,
                "scalars": {"arena_peak_bytes/EMBSR/b16": 50000.0,
                            "arena_live_over_planned/EMBSR/b16": 0.9}}}},
            {"commit": "y", "benches": {"arena": {
                "wall_seconds": 0.01, "threads": 1, "bench_scale": 1.0,
                "scalars": {"arena_peak_bytes/EMBSR/b16": 90000.0,
                            "arena_live_over_planned/EMBSR/b16": 0.9}}}},
        ]
        regs = check_entries(arena, 50.0, 0.05)
        if not any("arena_peak_bytes/EMBSR/b16" in r for r in regs):
            failures.append(f"arena peak growth not flagged: {regs}")
        arena[1]["benches"]["arena"]["scalars"] = {
            "arena_peak_bytes/EMBSR/b16": 50000.0,
            "arena_live_over_planned/EMBSR/b16": 1.5}
        regs = check_entries(arena, 50.0, 0.05)
        if not any("arena_live_over_planned/EMBSR/b16" in r for r in regs):
            failures.append(f"live-over-planned jump not flagged: {regs}")
        # ...while steady footprints stay quiet.
        arena[1]["benches"]["arena"]["scalars"] = {
            "arena_peak_bytes/EMBSR/b16": 52000.0,
            "arena_live_over_planned/EMBSR/b16": 0.92}
        if check_entries(arena, 50.0, 0.05):
            failures.append("steady arena footprint flagged as regression")

        # A sessions/sec *drop* is a regression (inverse direction)...
        slowed = [
            {"commit": "x", "benches": {"batch_throughput": {
                "wall_seconds": 0.01, "threads": 1, "bench_scale": 1.0,
                "scalars": {"sessions_per_sec/EMBSR/b32": 1000.0}}}},
            {"commit": "y", "benches": {"batch_throughput": {
                "wall_seconds": 0.01, "threads": 1, "bench_scale": 1.0,
                "scalars": {"sessions_per_sec/EMBSR/b32": 400.0}}}},
        ]
        regs = check_entries(slowed, 50.0, 0.05)
        if not any("sessions_per_sec/EMBSR/b32" in r for r in regs):
            failures.append(f"sessions/sec drop not flagged: {regs}")
        # ...while a throughput *gain* of any size stays quiet.
        slowed[1]["benches"]["batch_throughput"]["scalars"][
            "sessions_per_sec/EMBSR/b32"] = 5000.0
        if check_entries(slowed, 50.0, 0.05):
            failures.append("sessions/sec gain flagged as regression")

        # Workload changes make entries incomparable, not regressions.
        rescaled = [
            {"commit": "x", "benches": {"micro": {
                "wall_seconds": 1.0, "threads": 1, "bench_scale": 1.0}}},
            {"commit": "y", "benches": {"micro": {
                "wall_seconds": 4.0, "threads": 1, "bench_scale": 4.0}}},
        ]
        if check_entries(rescaled, 50.0, 0.05):
            failures.append("rescaled workload flagged as regression")

        opts = parser.parse_args(["report", "--history", history])
        if cmd_report(opts) != 0:
            failures.append("report failed on a valid history")

    for msg in failures:
        print(f"self-test: {msg}", file=sys.stderr)
    print(f"self-test: {len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv):
    opts = _parser().parse_args(argv)
    if opts.self_test:
        return self_test()
    if opts.cmd == "record":
        return cmd_record(opts)
    if opts.cmd == "report":
        return cmd_report(opts)
    if opts.cmd == "check":
        return cmd_check(opts)
    _parser().print_usage()
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
